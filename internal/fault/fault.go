// Package fault is a deterministic, seedable fault injector for the
// simulated training systems in dlsys. Production-scale training must
// survive worker crashes, stragglers, lost messages, and corrupted
// payloads; following the "design reliability in, then test it with
// injected failures" methodology (Engineering Reliable Deep Learning
// Systems, arXiv:1910.12582), every fault class here is derived purely
// from (seed, kind, worker, step, attempt) by a splitmix64-style hash, so
//
//   - the same seed always yields exactly the same failure scenario, and
//   - the outcome of one query never depends on how many other queries
//     were made or in what order (unlike a shared rand.Rand stream).
//
// That order-independence is what lets the injector be threaded through
// concurrent components (parallel workers, retrying senders) while keeping
// whole-run results bit-reproducible.
package fault

import "math"

// Kind enumerates the injectable fault classes.
type Kind uint32

// Fault classes. Each kind draws from an independent hash stream, so e.g.
// enabling crashes does not perturb which messages are dropped.
const (
	KindCrash    Kind = 1 + iota // worker dies and must restart from a snapshot
	KindStraggle                 // worker's step is slowed by a latency multiplier
	KindDrop                     // message lost in flight (sender must retry)
	KindCorrupt                  // payload bit-flipped in flight (CRC must catch it)
	KindStage                    // pipeline stage failure (graceful degradation)
	KindArrival                  // request inter-arrival draw (serving workloads)

	// Numerical fault classes, injected into the training computation
	// itself rather than the communication layer. These are what the
	// self-healing guard (internal/guard) defends against.

	KindBatchCorrupt // input batch poisoned with NaN/Inf/huge values
	KindLabelNoise   // burst of shuffled labels (gradient poison without NaNs)
	KindLRSpike      // learning rate transiently multiplied (divergence trigger)

	// Byzantine fault classes: adversarial workers that stay up and
	// responsive but submit poisoned contributions. Unlike the numerical
	// classes above, these stay finite by construction, so they slip past
	// NaN/Inf screens and must be defeated by robust aggregation
	// (internal/robust) rather than finiteness guards.

	KindSignFlip    // gradient negated and amplified (ascent instead of descent)
	KindScaleAttack // gradient inflated by a large factor
	KindDriftAttack // small consistent bias added each round (stealthy drift)
	KindCollude     // fixed coalition coordinating amplified label-flip gradients

	// Link-level fault classes, injected into individual edges of a
	// collective-communication topology rather than whole workers. Draws
	// are keyed by (seed, kind, src, dst, round) — see link.go — so a
	// flaky switch port affects exactly the same hops on every replay.

	KindLinkDrop  // one hop's payload lost on a specific link (sender retries, then reroutes)
	KindLinkSlow  // link degraded for the round: hop time multiplied
	KindPartition // network bipartition: every link across the cut is severed

	// Serving-overload fault classes, scheduled in windows against the
	// event-driven serving fleet (internal/serve Fleet). Both are
	// factor-shaped: a window's Factor is the knob and Prob is ignored,
	// like KindArrival flash crowds.

	KindRetryStorm // client class turns impatient: extra retries, compressed backoff
	KindBrownout   // replica brownout: service time multiplied (thermal throttle, noisy neighbour)

	// kindEnd is one past the last declared kind. The exhaustiveness test
	// iterates [KindCrash, kindEnd) and fails on any "unknown" rendering,
	// so a new kind cannot silently print as unknown in ledgers.
	kindEnd
)

// String names the kind for schedules and logs.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindStraggle:
		return "straggle"
	case KindDrop:
		return "drop"
	case KindCorrupt:
		return "corrupt"
	case KindStage:
		return "stage-fail"
	case KindArrival:
		return "arrival"
	case KindBatchCorrupt:
		return "batch-corrupt"
	case KindLabelNoise:
		return "label-noise"
	case KindLRSpike:
		return "lr-spike"
	case KindSignFlip:
		return "sign-flip"
	case KindScaleAttack:
		return "scale-attack"
	case KindDriftAttack:
		return "drift-attack"
	case KindCollude:
		return "collude"
	case KindLinkDrop:
		return "link-drop"
	case KindLinkSlow:
		return "link-slow"
	case KindPartition:
		return "partition"
	case KindRetryStorm:
		return "retry-storm"
	case KindBrownout:
		return "brownout"
	}
	return "unknown"
}

// Config sets the per-event probabilities of each fault class. The zero
// value injects nothing (a perfect world).
type Config struct {
	Seed int64

	// CrashProb is the per-worker, per-round probability of a crash. A
	// crashed worker is down for RestartDelay rounds and rejoins by
	// restoring the latest model snapshot.
	CrashProb float64
	// RestartDelay is how many rounds a crashed worker stays down
	// (default 3 when crashes are enabled).
	RestartDelay int

	// StragglerProb is the per-worker, per-round probability that a step
	// is slowed by StragglerFactor (default 8x).
	StragglerProb   float64
	StragglerFactor float64

	// DropProb is the per-attempt probability that a message is lost in
	// flight, forcing a retransmission.
	DropProb float64
	// CorruptProb is the per-attempt probability that a payload arrives
	// bit-corrupted; receivers detect this via CRC and request a resend.
	CorruptProb float64

	// BatchCorruptProb is the per-step probability that the input batch is
	// poisoned with non-finite or absurdly large values (a flaky data
	// loader, a bad shard, a bit-flip upstream of the feature pipeline).
	BatchCorruptProb float64
	// LabelNoiseProb is the per-step probability that the batch's labels
	// arrive shuffled — a gradient poison that stays finite, so it must be
	// caught by divergence detection rather than NaN scans.
	LabelNoiseProb float64
	// LRSpikeProb is the per-step probability that the learning rate is
	// transiently multiplied by LRSpikeFactor (default 64), modelling a
	// mis-applied schedule or config push.
	LRSpikeProb   float64
	LRSpikeFactor float64

	// ByzantineWorkers lists the worker ids that behave adversarially: they
	// stay up, compute on schedule, and answer every message, but the
	// gradients (sync regime) or parameters (Local SGD regime) they upload
	// are poisoned according to ByzantineKind. An empty list disables
	// Byzantine behaviour.
	ByzantineWorkers []int
	// ByzantineKind selects the attack the adversaries mount: KindSignFlip,
	// KindScaleAttack, KindDriftAttack, or KindCollude.
	ByzantineKind Kind
	// ByzantineRate is the per-round probability that each adversary
	// attacks (0 means the default of 1: the adversary attacks every
	// round). Draws are keyed by (ByzantineKind, worker, round), so which
	// rounds are attacked is order-independent like every other fault.
	ByzantineRate float64
	// SignFlipFactor amplifies the negated gradient under KindSignFlip
	// (default 100). A plain negation at f=1/8 workers still averages to a
	// descent direction; the amplification is what makes the mean diverge.
	SignFlipFactor float64
	// ScaleAttackFactor inflates the gradient under KindScaleAttack
	// (default 100).
	ScaleAttackFactor float64
	// DriftAttackBias is the per-coordinate magnitude of the constant,
	// hash-signed bias vector added under KindDriftAttack (default 1.5).
	// The direction is fixed per seed, so the attack drifts the model
	// consistently while each poisoned gradient stays a plausible inlier.
	DriftAttackBias float64
	// ColludeBoost amplifies the coalition's coordinated label-flip
	// gradients under KindCollude (default 50).
	ColludeBoost float64

	// LinkDropProb is the per-hop, per-attempt probability that a
	// topology edge loses its payload, forcing the sender to retransmit
	// and — once the retry budget is exhausted — to route around the link.
	LinkDropProb float64
	// LinkSlowProb is the per-link, per-round probability that an edge is
	// degraded for the whole round, multiplying every hop over it by
	// LinkSlowFactor (default 8x).
	LinkSlowProb   float64
	LinkSlowFactor float64
	// PartitionProb is the per-round probability that a network
	// bipartition begins. Once started it lasts PartitionRounds rounds
	// (default 3); each worker's side of the cut is a hash of the start
	// round, so the cut is stable for the partition's whole duration.
	PartitionProb   float64
	PartitionRounds int

	// Schedule lists declarative time-windowed fault rules resolved
	// against simulated time — see Window. A kind may be driven either by
	// its flat rate above or by windows, never both (Validate rejects the
	// conflict), so there is one source of truth for when each class
	// fires.
	Schedule []Window
}

// Rate builds a Config in which one knob drives every fault class at
// proportions typical of real clusters: message loss and stragglers at the
// full rate, corruption at a fifth of it, crashes at a tenth.
func Rate(seed int64, rate float64) Config {
	return Config{
		Seed:            seed,
		CrashProb:       rate / 10,
		RestartDelay:    3,
		StragglerProb:   rate,
		StragglerFactor: 8,
		DropProb:        rate,
		CorruptProb:     rate / 5,
	}
}

// NumericalRate builds a Config in which one knob drives only the numerical
// fault classes: batch corruption at the full rate, label-noise bursts at
// half, LR spikes at a fifth. This is the scenario generator for the X7
// self-healing experiment.
func NumericalRate(seed int64, rate float64) Config {
	return Config{
		Seed:             seed,
		BatchCorruptProb: rate,
		LabelNoiseProb:   rate / 2,
		LRSpikeProb:      rate / 5,
		LRSpikeFactor:    64,
	}
}

// LinkRate builds a Config in which one knob drives only the link-level
// fault classes: per-attempt hop drops at the full rate, degraded links at
// half of it, partitions starting at a twentieth. This is the scenario
// generator for the X12 topology experiment.
func LinkRate(seed int64, rate float64) Config {
	return Config{
		Seed:            seed,
		LinkDropProb:    rate,
		LinkSlowProb:    rate / 2,
		LinkSlowFactor:  8,
		PartitionProb:   rate / 20,
		PartitionRounds: 3,
	}
}

// Byzantine builds a Config in which only the listed workers misbehave,
// mounting the given attack every round (rate 1). Attack magnitudes take
// their documented defaults; callers tune the exported fields directly for
// anything else.
func Byzantine(seed int64, kind Kind, workers ...int) Config {
	return Config{
		Seed:             seed,
		ByzantineWorkers: workers,
		ByzantineKind:    kind,
		ByzantineRate:    1,
	}
}

// Enabled reports whether any fault class has nonzero probability.
func (c Config) Enabled() bool {
	return c.CrashProb > 0 || c.StragglerProb > 0 || c.DropProb > 0 || c.CorruptProb > 0 ||
		c.BatchCorruptProb > 0 || c.LabelNoiseProb > 0 || c.LRSpikeProb > 0 ||
		c.LinkDropProb > 0 || c.LinkSlowProb > 0 || c.PartitionProb > 0 ||
		len(c.ByzantineWorkers) > 0 || len(c.Schedule) > 0
}

// Validate checks every probability is in [0, 1] and that the Byzantine
// configuration is coherent (a valid attack kind, non-negative worker ids).
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"CrashProb", c.CrashProb}, {"StragglerProb", c.StragglerProb},
		{"DropProb", c.DropProb}, {"CorruptProb", c.CorruptProb},
		{"BatchCorruptProb", c.BatchCorruptProb}, {"LabelNoiseProb", c.LabelNoiseProb},
		{"LRSpikeProb", c.LRSpikeProb}, {"ByzantineRate", c.ByzantineRate},
		{"LinkDropProb", c.LinkDropProb}, {"LinkSlowProb", c.LinkSlowProb},
		{"PartitionProb", c.PartitionProb},
	} {
		if p.v < 0 || p.v > 1 {
			return &ConfigError{Field: p.name, Value: p.v}
		}
	}
	if len(c.ByzantineWorkers) > 0 {
		if !IsByzantineKind(c.ByzantineKind) {
			return &ConfigError{Field: "ByzantineKind", Value: float64(c.ByzantineKind),
				Reason: "is not a Byzantine attack kind"}
		}
		for _, w := range c.ByzantineWorkers {
			if w < 0 {
				return &ConfigError{Field: "ByzantineWorkers", Value: float64(w),
					Reason: "contains a negative worker id"}
			}
		}
	}
	return c.validateSchedule()
}

// ConfigError reports an invalid fault-config field: an out-of-range
// probability unless Reason says otherwise.
type ConfigError struct {
	Field  string
	Value  float64
	Reason string // defaults to "out of [0,1]" when empty
}

func (e *ConfigError) Error() string {
	r := e.Reason
	if r == "" {
		r = "out of [0,1]"
	}
	return "fault: " + e.Field + " " + r
}

// Injector answers "does fault X happen at (worker, step, attempt)?"
// deterministically. Apart from the optional clock (set once via SetClock
// before any concurrent use), it is stateless and safe for concurrent use.
type Injector struct {
	cfg   Config
	clock Clock
}

// NewInjector builds an injector for the config. A nil injector (or one
// with a zero config) injects nothing, so callers can thread it through
// unconditionally.
func NewInjector(cfg Config) *Injector { return &Injector{cfg: cfg} }

// splitmix64 is the finalizer of the SplitMix64 generator — a fast,
// well-distributed 64-bit mix used here as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps (seed, kind, worker, step, attempt) to a uniform [0,1) float.
func (i *Injector) unit(kind Kind, worker, step, attempt int) float64 {
	h := splitmix64(uint64(i.cfg.Seed))
	h = splitmix64(h ^ uint64(kind))
	h = splitmix64(h ^ uint64(int64(worker)))
	h = splitmix64(h ^ uint64(int64(step)))
	h = splitmix64(h ^ uint64(int64(attempt)))
	return float64(h>>11) / float64(1<<53)
}

// Chance is the generic deterministic Bernoulli draw: it reports whether
// the event of the given kind fires at (worker, step, attempt) under
// probability p. Components with fault classes beyond the built-in ones
// (e.g. pipeline stage failures) build on this directly.
func (i *Injector) Chance(kind Kind, worker, step, attempt int, p float64) bool {
	if i == nil || p <= 0 {
		return false
	}
	return i.unit(kind, worker, step, attempt) < p
}

// Exp maps (kind, worker, step, attempt) to a deterministic exponential
// variate with the given mean, via inversion of the same hash stream Chance
// uses. It is the arrival-process primitive for simulated serving
// workloads: Poisson arrivals whose gaps cannot be perturbed by how many
// other injector queries were made. A nil injector or non-positive mean
// yields 0.
func (i *Injector) Exp(kind Kind, worker, step, attempt int, mean float64) float64 {
	if i == nil || mean <= 0 {
		return 0
	}
	// 1-u is in (0,1], so the log never sees zero.
	return -mean * math.Log(1-i.unit(kind, worker, step, attempt))
}

// Crashes reports whether the worker crashes at the given round. With a
// clock attached, crash windows active at the clock's time add to the flat
// rate.
func (i *Injector) Crashes(worker, round int) bool {
	if i == nil {
		return false
	}
	return i.Chance(KindCrash, worker, round, 0, i.probNow(KindCrash, worker, i.cfg.CrashProb))
}

// RestartDelay returns how many rounds a crashed worker stays down.
func (i *Injector) RestartDelay() int {
	if i == nil || i.cfg.RestartDelay <= 0 {
		return 3
	}
	return i.cfg.RestartDelay
}

// StraggleFactor returns the latency multiplier for the worker's compute
// at the given round: 1 normally, the configured factor when straggling.
// With a clock attached, straggle windows active at the clock's time drive
// the draw (and supply the factor) instead of the flat rate.
func (i *Injector) StraggleFactor(worker, round int) float64 {
	if i == nil {
		return 1
	}
	if t, ok := i.clockNow(); ok {
		return i.StraggleFactorAt(worker, round, t)
	}
	return i.straggleFlat(worker, round)
}

// straggleFlat is the rate-driven straggler draw, shared by the clockless
// and out-of-window paths.
func (i *Injector) straggleFlat(worker, round int) float64 {
	if !i.Chance(KindStraggle, worker, round, 0, i.cfg.StragglerProb) {
		return 1
	}
	if i.cfg.StragglerFactor <= 1 {
		return 8
	}
	return i.cfg.StragglerFactor
}

// Drops reports whether the attempt-th transmission of the worker's
// message at the given round is lost in flight.
func (i *Injector) Drops(worker, round, attempt int) bool {
	if i == nil {
		return false
	}
	return i.Chance(KindDrop, worker, round, attempt, i.probNow(KindDrop, worker, i.cfg.DropProb))
}

// Corrupts reports whether the attempt-th transmission arrives with
// flipped bits (to be caught by the receiver's CRC).
func (i *Injector) Corrupts(worker, round, attempt int) bool {
	if i == nil {
		return false
	}
	return i.Chance(KindCorrupt, worker, round, attempt, i.probNow(KindCorrupt, worker, i.cfg.CorruptProb))
}

// CorruptPayload deterministically flips one bit of payload (chosen by the
// same hash stream as Corrupts) and returns it. Used to exercise real CRC
// detection rather than just simulating a boolean.
func (i *Injector) CorruptPayload(payload []byte, worker, round, attempt int) []byte {
	if i == nil || len(payload) == 0 {
		return payload
	}
	h := splitmix64(uint64(i.cfg.Seed)) ^ splitmix64(uint64(KindCorrupt)<<32|uint64(int64(worker)))
	h = splitmix64(h ^ uint64(int64(round))<<16 ^ uint64(int64(attempt)))
	bit := h % uint64(len(payload)*8)
	payload[bit/8] ^= 1 << (bit % 8)
	return payload
}

// Event is one scheduled fault occurrence.
type Event struct {
	Round  int
	Worker int
	Kind   Kind
	// Factor is the straggler latency multiplier (KindStraggle only).
	Factor float64
}

// Schedule enumerates the crash and straggler events the injector will
// produce for the given worker count and round horizon, in (round, worker)
// order. Drop/corrupt events are attempt-dependent (they depend on how
// often senders retry) and so are not part of the static schedule.
func (i *Injector) Schedule(workers, rounds int) []Event {
	var evs []Event
	if i == nil {
		return evs
	}
	for r := 0; r < rounds; r++ {
		for w := 0; w < workers; w++ {
			if i.Crashes(w, r) {
				evs = append(evs, Event{Round: r, Worker: w, Kind: KindCrash})
			}
			if f := i.StraggleFactor(w, r); f > 1 {
				evs = append(evs, Event{Round: r, Worker: w, Kind: KindStraggle, Factor: f})
			}
		}
	}
	return evs
}

// WorkerSeed derives an independent RNG seed for one worker from the run
// seed, so per-worker random streams (batch shuffles, initialisation) are
// stable regardless of the order or interleaving in which workers execute —
// a prerequisite for fault-injected reordering not changing results.
func WorkerSeed(seed int64, worker int) int64 {
	s := splitmix64(uint64(seed) ^ splitmix64(uint64(int64(worker))+0x517cc1b727220a95))
	// Keep the seed positive for readability in logs; rand.NewSource
	// accepts any int64 but negative seeds read poorly.
	return int64(s & math.MaxInt64)
}
