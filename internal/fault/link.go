package fault

// Link-level fault draws: faults that live on the edges of a
// collective-communication topology rather than on whole workers. A link
// is the directed pair (src, dst); every draw is a pure splitmix64 hash of
// (seed, kind, src, dst, round), folded through the same Chance stream as
// the worker-level classes, so
//
//   - the same seed reproduces exactly the same flaky links on replay,
//   - the outcome for one hop never depends on how many other hops the
//     topology walked first (ring and tree walks can be reordered or
//     parallelised without perturbing results), and
//   - distinct hops of the same round over the same link draw
//     independently (hopSeq salts the attempt key), so a ring that
//     traverses a link 2(m-1) times sees transient, not sticky, drops.
//
// Schedule windows apply with the source worker as the window key: a
// Window{Kind: KindLinkDrop, Workers: []int{3}} degrades every link out of
// worker 3 for its duration.

// linkKey folds a directed edge into the injector's worker slot. Worker
// ids are far below 2^31, so the pairing is collision-free in practice.
func linkKey(src, dst int) int {
	return src<<20 ^ dst ^ (src >> 11)
}

// LinkDrops reports whether the attempt-th transmission over the directed
// link src→dst is lost, for the hopSeq-th phase of the round's collective.
func (i *Injector) LinkDrops(src, dst, round, hopSeq, attempt int) bool {
	if i == nil {
		return false
	}
	p := i.probNow(KindLinkDrop, src, i.cfg.LinkDropProb)
	return i.Chance(KindLinkDrop, linkKey(src, dst), round, hopSeq*1024+attempt, p)
}

// LinkSlow returns the latency multiplier for hops over src→dst at the
// given round: 1 normally, the configured LinkSlowFactor (default 8) when
// the link is degraded. A slow link stays slow for the whole round.
func (i *Injector) LinkSlow(src, dst, round int) float64 {
	if i == nil {
		return 1
	}
	p := i.probNow(KindLinkSlow, src, i.cfg.LinkSlowProb)
	if !i.Chance(KindLinkSlow, linkKey(src, dst), round, 0, p) {
		return 1
	}
	if i.cfg.LinkSlowFactor <= 1 {
		return 8
	}
	return i.cfg.LinkSlowFactor
}

// PartitionRoundsLen returns how many rounds a partition lasts once begun.
func (i *Injector) PartitionRoundsLen() int {
	if i == nil || i.cfg.PartitionRounds <= 0 {
		return 3
	}
	return i.cfg.PartitionRounds
}

// PartitionAt reports whether a network bipartition is active at the round
// and, if so, the round it started. Side assignments are keyed by the
// start round (see PartitionSide), so a partition's cut is stable for its
// whole duration. When two partitions overlap the most recent start wins.
func (i *Injector) PartitionAt(round int) (start int, active bool) {
	if i == nil {
		return 0, false
	}
	dur := i.PartitionRoundsLen()
	for r := round; r > round-dur && r >= 0; r-- {
		p := i.probNow(KindPartition, 0, i.cfg.PartitionProb)
		if i.Chance(KindPartition, 0, r, 0, p) {
			return r, true
		}
	}
	return 0, false
}

// PartitionSide assigns the worker to one side (0 or 1) of the partition
// that started at the given round. The assignment is a pure hash, so both
// endpoints of a link agree on the cut without coordination.
func (i *Injector) PartitionSide(worker, start int) int {
	if i == nil {
		return 0
	}
	if i.unit(KindPartition, worker, start, 1) < 0.5 {
		return 0
	}
	return 1
}

// LinkCut reports whether the directed link src→dst crosses an active
// partition's cut at the round (and is therefore severed).
func (i *Injector) LinkCut(src, dst, round int) bool {
	start, active := i.PartitionAt(round)
	if !active {
		return false
	}
	return i.PartitionSide(src, start) != i.PartitionSide(dst, start)
}
