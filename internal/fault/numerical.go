package fault

import "math"

// Numerical fault injection: faults in the training computation itself
// (poisoned batches, shuffled labels, spiked learning rates) rather than the
// communication layer. Every draw is keyed by (seed, kind, worker, step,
// attempt) exactly like the communication faults, so numerical fault
// scenarios replay bit-identically and are order-independent across
// concurrent workers.

// CorruptsBatch reports whether the worker's input batch at the given step
// is poisoned.
func (i *Injector) CorruptsBatch(worker, step int) bool {
	if i == nil {
		return false
	}
	return i.Chance(KindBatchCorrupt, worker, step, 0, i.probNow(KindBatchCorrupt, worker, i.cfg.BatchCorruptProb))
}

// CorruptBatchValues deterministically poisons a batch in place and returns
// how many values were overwritten. Poison values cycle through NaN, +Inf,
// -Inf, and 1e12 — the last stays finite, so detectors must catch magnitude
// explosions too, not just non-finite scans. Roughly 2% of the batch is
// poisoned, with at least one value guaranteed so an injected fault is never
// a silent no-op.
func (i *Injector) CorruptBatchValues(data []float64, worker, step int) int {
	if i == nil || len(data) == 0 {
		return 0
	}
	poisons := [...]float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e12}
	n := len(data) / 50
	if n < 1 {
		n = 1
	}
	h := splitmix64(uint64(i.cfg.Seed)) ^ splitmix64(uint64(KindBatchCorrupt)<<32|uint64(int64(worker)))
	h = splitmix64(h ^ uint64(int64(step))<<16)
	for j := 0; j < n; j++ {
		h = splitmix64(h)
		idx := int(h % uint64(len(data)))
		data[idx] = poisons[j%len(poisons)]
	}
	return n
}

// LabelNoise reports whether the worker's labels at the given step arrive
// shuffled.
func (i *Injector) LabelNoise(worker, step int) bool {
	if i == nil {
		return false
	}
	return i.Chance(KindLabelNoise, worker, step, 0, i.probNow(KindLabelNoise, worker, i.cfg.LabelNoiseProb))
}

// ShuffleLabels deterministically rotates the one-hot rows of a flat
// [rows × classes] label matrix by a hash-derived offset in [1, rows), so
// every example's label is wrong but the matrix stays a valid one-hot
// encoding (the poison is semantic, not numerical).
func (i *Injector) ShuffleLabels(labels []float64, rows, classes, worker, step int) {
	if i == nil || rows < 2 || len(labels) != rows*classes {
		return
	}
	h := splitmix64(uint64(i.cfg.Seed)) ^ splitmix64(uint64(KindLabelNoise)<<32|uint64(int64(worker)))
	h = splitmix64(h ^ uint64(int64(step))<<16)
	shift := 1 + int(h%uint64(rows-1))
	rotated := make([]float64, len(labels))
	for r := 0; r < rows; r++ {
		src := ((r + shift) % rows) * classes
		copy(rotated[r*classes:(r+1)*classes], labels[src:src+classes])
	}
	copy(labels, rotated)
}

// LRSpikeFactor returns the learning-rate multiplier for the worker's step:
// 1 normally, the configured spike factor (default 64) when the fault fires.
// LR-spike windows supply their own Factor when they drive the draw.
func (i *Injector) LRSpikeFactor(worker, step int) float64 {
	if i == nil {
		return 1
	}
	if t, ok := i.clockNow(); ok {
		if wp, wf := i.windowStateAt(KindLRSpike, worker, t); wp > 0 {
			if !i.Chance(KindLRSpike, worker, step, 0, wp) {
				return 1
			}
			if wf <= 1 {
				return 64
			}
			return wf
		}
	}
	if !i.Chance(KindLRSpike, worker, step, 0, i.cfg.LRSpikeProb) {
		return 1
	}
	if i.cfg.LRSpikeFactor <= 1 {
		return 64
	}
	return i.cfg.LRSpikeFactor
}
