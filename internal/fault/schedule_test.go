package fault

import (
	"errors"
	"testing"
)

// fixedClock pins the injector's simulated time for window tests.
type fixedClock struct{ t float64 }

func (c *fixedClock) Now() float64 { return c.t }

func TestWindowActivation(t *testing.T) {
	inj := NewInjector(Config{Seed: 7, Schedule: []Window{
		{Kind: KindCrash, Workers: []int{3}, StartS: 120, EndS: 130, Prob: 1},
	}})
	clk := &fixedClock{}
	inj.SetClock(clk)

	for _, tt := range []struct {
		t      float64
		worker int
		want   bool
	}{
		{119.9, 3, false}, // before the window
		{120, 3, true},    // inclusive start
		{125, 3, true},
		{125, 2, false}, // worker not listed
		{130, 3, false}, // exclusive end
		{500, 3, false},
	} {
		clk.t = tt.t
		if got := inj.Crashes(tt.worker, 0); got != tt.want {
			t.Errorf("Crashes(worker=%d) at t=%g = %v, want %v", tt.worker, tt.t, got, tt.want)
		}
	}
}

func TestOpenEndedWindow(t *testing.T) {
	inj := NewInjector(Config{Seed: 7, Schedule: []Window{
		{Kind: KindCrash, StartS: 600, Prob: 1}, // EndS 0 = open-ended, all workers
	}})
	clk := &fixedClock{t: 599}
	inj.SetClock(clk)
	if inj.Crashes(0, 0) {
		t.Fatal("open-ended window fired before its start")
	}
	clk.t = 1e9
	if !inj.Crashes(0, 0) {
		t.Fatal("open-ended window inactive long after its start")
	}
}

func TestZeroLengthWindowNeverFires(t *testing.T) {
	cfg := Config{Seed: 7, Schedule: []Window{
		{Kind: KindCrash, StartS: 50, EndS: 50, Prob: 1},
	}}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("zero-length window rejected: %v", err)
	}
	inj := NewInjector(cfg)
	clk := &fixedClock{t: 50}
	inj.SetClock(clk)
	if inj.Crashes(0, 0) {
		t.Fatal("zero-length window fired at its own boundary")
	}
}

// TestOverlappingWindowsCombine checks that two overlapping windows of the
// same kind combine probabilities as 1-(1-p1)(1-p2) and multiply factors.
func TestOverlappingWindowsCombine(t *testing.T) {
	inj := NewInjector(Config{Seed: 7, Schedule: []Window{
		{Kind: KindStraggle, StartS: 0, EndS: 100, Prob: 0.5, Factor: 2},
		{Kind: KindStraggle, StartS: 50, EndS: 200, Prob: 0.5, Factor: 3},
	}})
	prob, factor := inj.windowStateAt(KindStraggle, 0, 75)
	if prob != 0.75 {
		t.Fatalf("overlap probability %g, want 0.75", prob)
	}
	if factor != 6 {
		t.Fatalf("overlap factor %g, want 6 (factors multiply)", factor)
	}
	// Outside the overlap only one window contributes.
	prob, factor = inj.windowStateAt(KindStraggle, 0, 150)
	if prob != 0.5 || factor != 3 {
		t.Fatalf("single-window state (%g, %g), want (0.5, 3)", prob, factor)
	}
	// Straggle draws in the overlap use the combined probability: over many
	// keyed draws roughly 75% should straggle with factor 6.
	hits := 0
	for step := 0; step < 2000; step++ {
		if f := inj.StraggleFactorAt(0, step, 75); f > 1 {
			hits++
			if f != 6 {
				t.Fatalf("straggle factor %g in overlap, want 6", f)
			}
		}
	}
	if hits < 1350 || hits > 1650 {
		t.Fatalf("combined straggle rate %d/2000, want ~1500", hits)
	}
}

func TestArrivalWindowScalesRate(t *testing.T) {
	base := NewInjector(Config{Seed: 11})
	crowd := NewInjector(Config{Seed: 11, Schedule: []Window{
		{Kind: KindArrival, StartS: 300, EndS: 360, Factor: 8},
	}})
	var quiet, spike float64
	for id := 0; id < 500; id++ {
		quiet += crowd.ArrivalGapAt(id, 1, 100) // outside the window
		spike += crowd.ArrivalGapAt(id, 1, 330) // inside the flash crowd
	}
	if quiet == 0 || spike == 0 {
		t.Fatal("arrival gaps degenerate")
	}
	if ratio := quiet / spike; ratio < 7.9 || ratio > 8.1 {
		t.Fatalf("flash-crowd rate ratio %g, want exactly 8 (same hash stream, scaled mean)", ratio)
	}
	// Outside any window the gap matches the plain Exp draw.
	if got, want := crowd.ArrivalGapAt(7, 1, 100), base.Exp(KindArrival, 0, 7, 0, 1); got != want {
		t.Fatalf("out-of-window gap %g differs from plain Exp %g", got, want)
	}
}

func TestByzantineWindow(t *testing.T) {
	inj := NewInjector(Config{Seed: 5, Schedule: []Window{
		{Kind: KindSignFlip, Workers: []int{5, 6}, StartS: 600},
	}})
	clk := &fixedClock{t: 100}
	inj.SetClock(clk)
	g := []float64{1, 1}
	if inj.CorruptGradient(g, 5, 0) {
		t.Fatal("Byzantine window attacked before its start")
	}
	clk.t = 700
	if !inj.CorruptGradient(g, 5, 0) {
		t.Fatal("Byzantine window inactive after its start")
	}
	if g[0] != -100 {
		t.Fatalf("sign-flip produced %g, want -100 (default amplification)", g[0])
	}
	if inj.CorruptGradient(g, 0, 0) {
		t.Fatal("worker outside the coalition attacked")
	}
	if !inj.ByzantineFires(6, 3) {
		t.Fatal("coalition member 6 did not fire inside the window")
	}
}

func TestScheduleValidation(t *testing.T) {
	cases := []struct {
		name  string
		cfg   Config
		field string
	}{
		{"unknown kind", Config{Schedule: []Window{{Kind: kindEnd, Prob: 1}}}, "Schedule"},
		{"negative start", Config{Schedule: []Window{{Kind: KindCrash, StartS: -1, Prob: 1}}}, "Schedule"},
		{"end before start", Config{Schedule: []Window{{Kind: KindCrash, StartS: 10, EndS: 5, Prob: 1}}}, "Schedule"},
		{"probability above one", Config{Schedule: []Window{{Kind: KindCrash, Prob: 1.5}}}, "Schedule"},
		{"zero probability", Config{Schedule: []Window{{Kind: KindCrash}}}, "Schedule"},
		{"negative worker", Config{Schedule: []Window{{Kind: KindCrash, Prob: 1, Workers: []int{-3}}}}, "Schedule"},
		{"arrival without factor", Config{Schedule: []Window{{Kind: KindArrival}}}, "Schedule"},
		{"negative factor", Config{Schedule: []Window{{Kind: KindStraggle, Prob: 1, Factor: -2}}}, "Schedule"},
		{"crash rate conflict",
			Config{CrashProb: 0.1, Schedule: []Window{{Kind: KindCrash, Prob: 1}}}, "CrashProb"},
		{"lr-spike rate conflict",
			Config{LRSpikeProb: 0.2, Schedule: []Window{{Kind: KindLRSpike, Prob: 0.5}}}, "LRSpikeProb"},
		{"byzantine rate conflict",
			Config{ByzantineWorkers: []int{1}, ByzantineKind: KindSignFlip,
				Schedule: []Window{{Kind: KindScaleAttack}}}, "Schedule"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted an invalid schedule", tc.name)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("%s: error %T is not a *ConfigError", tc.name, err)
			continue
		}
		if ce.Field != tc.field {
			t.Errorf("%s: ConfigError.Field = %q, want %q", tc.name, ce.Field, tc.field)
		}
	}
	// The non-conflicting combination is legal: rate-driven drops plus a
	// scheduled crash window.
	ok := Config{DropProb: 0.1, Schedule: []Window{{Kind: KindCrash, StartS: 10, EndS: 20, Prob: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid mixed config rejected: %v", err)
	}
}

// TestScheduledInjectionDeterminism replays a mixed schedule twice and
// requires the full fault trace to match draw for draw.
func TestScheduledInjectionDeterminism(t *testing.T) {
	trace := func() []float64 {
		inj := NewInjector(Config{Seed: 99, Schedule: []Window{
			{Kind: KindCrash, Workers: []int{3}, StartS: 120, EndS: 130, Prob: 1},
			{Kind: KindStraggle, StartS: 200, EndS: 400, Prob: 0.3, Factor: 4},
			{Kind: KindArrival, StartS: 300, EndS: 360, Factor: 8},
			{Kind: KindSignFlip, Workers: []int{5}, StartS: 600},
			{Kind: KindBatchCorrupt, StartS: 900, EndS: 950, Prob: 0.5},
		}})
		clk := &fixedClock{}
		inj.SetClock(clk)
		var out []float64
		for step := 0; step < 200; step++ {
			clk.t = float64(step * 6)
			for w := 0; w < 8; w++ {
				b := 0.0
				if inj.Crashes(w, step) {
					b = 1
				}
				g := []float64{1}
				if inj.CorruptGradient(g, w, step) {
					b += 2
				}
				if inj.CorruptsBatch(w, step) {
					b += 4
				}
				out = append(out, b, inj.StraggleFactor(w, step), g[0])
			}
			out = append(out, inj.ArrivalGapAt(step, 0.5, clk.t))
		}
		return out
	}
	a, b := trace(), trace()
	fired := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scheduled fault trace diverged at draw %d: %g vs %g", i, a[i], b[i])
		}
		if a[i] != 0 && a[i] != 1 {
			fired = true
		}
	}
	if !fired {
		t.Fatal("schedule injected nothing over the whole trace")
	}
}
