package fault

// Byzantine fault injection: adversarial workers that participate in every
// round on schedule but upload poisoned contributions. The attacks are all
// finite by construction — they are designed to slip past the NaN/Inf
// screens of internal/guard and must instead be defeated by the robust
// aggregators in internal/robust. Like every other class, each draw is a
// pure hash of (seed, kind, worker, round), so Byzantine scenarios replay
// bit-identically regardless of worker execution order.

// colludeCoalition is the pseudo-worker key under which the colluding
// coalition derives its shared label-flip shift: every colluder hashes the
// same key, so the coalition's poison is coordinated, not independent.
const colludeCoalition = -2

// IsByzantineKind reports whether k is one of the adversarial-worker
// attack kinds.
func IsByzantineKind(k Kind) bool {
	switch k {
	case KindSignFlip, KindScaleAttack, KindDriftAttack, KindCollude:
		return true
	}
	return false
}

// ByzantineWorker reports whether the worker is in the configured
// adversarial set.
func (i *Injector) ByzantineWorker(worker int) bool {
	if i == nil {
		return false
	}
	for _, w := range i.cfg.ByzantineWorkers {
		if w == worker {
			return true
		}
	}
	return false
}

// ByzantineFires reports whether the (adversarial) worker attacks at the
// given round: always false for honest workers, and a deterministic
// ByzantineRate draw keyed by the attack kind for adversarial ones.
// Byzantine schedule windows (resolved at the attached clock's time) make
// their listed workers adversarial for the window's duration.
func (i *Injector) ByzantineFires(worker, round int) bool {
	_, fires := i.byzantineAt(worker, round, 0, false)
	return fires
}

// ColludesBatch reports whether the worker is a colluder attacking this
// round: under KindCollude the poison is applied to the batch labels (via
// ColludeShuffleLabels) before the gradient is computed, then amplified by
// CorruptGradient.
func (i *Injector) ColludesBatch(worker, round int) bool {
	kind, fires := i.byzantineAt(worker, round, 0, false)
	return fires && kind == KindCollude
}

// ColludeShuffleLabels rotates the one-hot rows of a flat [rows × classes]
// label matrix by a shift every coalition member derives identically (the
// draw is keyed by the round and a shared coalition key, not the worker),
// so the colluders' label-flip gradients push in a coordinated direction.
func (i *Injector) ColludeShuffleLabels(labels []float64, rows, classes, round int) {
	if i == nil || rows < 2 || len(labels) != rows*classes {
		return
	}
	coalition := int64(colludeCoalition)
	h := splitmix64(uint64(i.cfg.Seed)) ^ splitmix64(uint64(KindCollude)<<32^uint64(coalition))
	h = splitmix64(h ^ uint64(int64(round))<<16)
	shift := 1 + int(h%uint64(rows-1))
	rotated := make([]float64, len(labels))
	for r := 0; r < rows; r++ {
		src := ((r + shift) % rows) * classes
		copy(rotated[r*classes:(r+1)*classes], labels[src:src+classes])
	}
	copy(labels, rotated)
}

// CorruptGradient applies the configured Byzantine attack to the worker's
// uploaded gradient (or parameter) vector in place, reporting whether an
// attack was applied this round. Honest workers and non-attacking rounds
// are untouched. Every attack keeps the vector finite:
//
//   - KindSignFlip: g ← −SignFlipFactor·g (amplified ascent direction)
//   - KindScaleAttack: g ← ScaleAttackFactor·g
//   - KindDriftAttack: g ← g + b, where b is a constant hash-signed bias
//     vector of per-coordinate magnitude DriftAttackBias, identical every
//     round (the stealthy consistent-drift attack)
//   - KindCollude: g ← ColludeBoost·g, amplifying the label-flip gradient
//     the coalition produced via ColludeShuffleLabels
func (i *Injector) CorruptGradient(g []float64, worker, round int) bool {
	if i == nil || len(g) == 0 {
		return false
	}
	kind, fires := i.byzantineAt(worker, round, 0, false)
	if !fires {
		return false
	}
	switch kind {
	case KindSignFlip:
		f := i.cfg.SignFlipFactor
		if f <= 0 {
			f = 100
		}
		for j := range g {
			g[j] *= -f
		}
	case KindScaleAttack:
		f := i.cfg.ScaleAttackFactor
		if f <= 0 {
			f = 100
		}
		for j := range g {
			g[j] *= f
		}
	case KindDriftAttack:
		b := i.cfg.DriftAttackBias
		if b <= 0 {
			b = 1.5
		}
		// The bias direction depends only on (seed, coordinate): the same
		// drift is applied every round, which is what makes it effective.
		h0 := splitmix64(uint64(i.cfg.Seed)) ^ splitmix64(uint64(KindDriftAttack)<<32)
		for j := range g {
			if splitmix64(h0^uint64(j))&1 == 0 {
				g[j] += b
			} else {
				g[j] -= b
			}
		}
	case KindCollude:
		f := i.cfg.ColludeBoost
		if f <= 0 {
			f = 50
		}
		for j := range g {
			g[j] *= f
		}
	default:
		return false
	}
	return true
}
