package interpret

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// smoothNet trains a tanh classifier (smooth, so IG's completeness
// converges quickly in steps).
func smoothNet(t *testing.T, seed int64) (*nn.Network, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 500, 6, 3, 3)
	net := nn.NewNetwork(
		nn.NewDenseXavier(rng, "fc0", 6, 24),
		nn.NewTanh("tanh0"),
		nn.NewDenseXavier(rng, "fc1", 24, 3),
	)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 3), nn.TrainConfig{Epochs: 25, BatchSize: 32})
	return net, ds
}

func TestIntegratedGradientsCompleteness(t *testing.T) {
	net, ds := smoothNet(t, 1)
	x := tensor.FromSlice(append([]float64(nil), ds.X.Row(0)...), 1, 6)
	baseline := tensor.New(1, 6)
	attr := IntegratedGradients(net, x, baseline, ds.Labels[0], 64)
	if gap := CompletenessGap(net, x, baseline, attr, ds.Labels[0]); gap > 0.02 {
		t.Fatalf("completeness gap %.4f > 2%%", gap)
	}
}

func TestIntegratedGradientsMoreStepsTighter(t *testing.T) {
	net, ds := smoothNet(t, 2)
	x := tensor.FromSlice(append([]float64(nil), ds.X.Row(3)...), 1, 6)
	baseline := tensor.New(1, 6)
	class := ds.Labels[3]
	coarse := CompletenessGap(net, x, baseline, IntegratedGradients(net, x, baseline, class, 2), class)
	fine := CompletenessGap(net, x, baseline, IntegratedGradients(net, x, baseline, class, 128), class)
	if fine > coarse {
		t.Fatalf("more steps should tighten completeness: 2-step %.4f vs 128-step %.4f", coarse, fine)
	}
}

func TestIntegratedGradientsShapeMismatchPanics(t *testing.T) {
	net, ds := smoothNet(t, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	IntegratedGradients(net, ds.X.Reshape(ds.N(), 6), tensor.New(1, 6), 0, 4)
}

func TestOcclusionAgreesWithGradientSaliency(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds, _ := data.SyntheticDigits(rng, data.DigitsConfig{N: 160})
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := nn.NewNetwork(
		nn.NewConv2D(rng, "c1", g, 4),
		nn.NewReLU("r1"),
		nn.NewFlatten("f"),
		nn.NewDense(rng, "out", 4*64, 4),
	)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 4), nn.TrainConfig{Epochs: 40, BatchSize: 16})

	var corrSum float64
	for i := 0; i < 8; i++ {
		x := tensor.FromSlice(append([]float64(nil), ds.X.Data[i*64:(i+1)*64]...), 1, 1, 8, 8)
		grad := Saliency(net, x, ds.Labels[i])
		occ := OcclusionSaliency(net, x, ds.Labels[i], 0)
		corrSum += AttributionRankCorrelation(grad, occ)
	}
	if avg := corrSum / 8; avg < 0.4 {
		t.Fatalf("gradient and occlusion maps disagree: mean rank corr %.3f", avg)
	}
}

func TestOcclusionConcentratesOnGlyph(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds, masks := data.SyntheticDigits(rng, data.DigitsConfig{N: 160})
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := nn.NewNetwork(
		nn.NewConv2D(rng, "c1", g, 4),
		nn.NewReLU("r1"),
		nn.NewFlatten("f"),
		nn.NewDense(rng, "out", 4*64, 4),
	)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 4), nn.TrainConfig{Epochs: 40, BatchSize: 16})

	var ratio float64
	n := 12
	for i := 0; i < n; i++ {
		x := tensor.FromSlice(append([]float64(nil), ds.X.Data[i*64:(i+1)*64]...), 1, 1, 8, 8)
		occ := OcclusionSaliency(net, x, ds.Labels[i], 0)
		occ.ApplyInPlace(func(v float64) float64 {
			if v < 0 {
				return 0
			}
			return v
		})
		mask := masks[ds.Labels[i]]
		area := 0
		for _, m := range mask {
			if m {
				area++
			}
		}
		ratio += SaliencyMass(occ, mask) / (float64(area) / 64)
	}
	if avg := ratio / float64(n); avg < 1.5 {
		t.Fatalf("occlusion concentration %.2f too low", avg)
	}
}

func TestRankCorrelationBounds(t *testing.T) {
	a := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
	if c := AttributionRankCorrelation(a, a); c != 1 {
		t.Fatalf("self correlation %g != 1", c)
	}
	b := tensor.FromSlice([]float64{4, 3, 2, 1}, 4)
	if c := AttributionRankCorrelation(a, b); c != -1 {
		t.Fatalf("reversed correlation %g != -1", c)
	}
}
