package interpret

import (
	"math"
	"sort"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// DecisionTree is a CART classifier used as a self-explanatory global
// surrogate: trained on a network's PREDICTIONS, its agreement with the
// network measures how faithfully simple rules capture the learned
// function.
type DecisionTree struct {
	root *treeNode
	// MaxDepth and MinSamples bound tree growth.
	MaxDepth   int
	MinSamples int
	classes    int
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	leaf        bool
	class       int
}

// NewDecisionTree creates an untrained tree with the given growth bounds.
func NewDecisionTree(maxDepth, minSamples int) *DecisionTree {
	return &DecisionTree{MaxDepth: maxDepth, MinSamples: minSamples}
}

// Fit trains on rows of x against integer labels using Gini impurity.
func (t *DecisionTree) Fit(x *tensor.Tensor, labels []int, classes int) {
	t.classes = classes
	idx := make([]int, x.Dim(0))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(x, labels, idx, 0)
}

func (t *DecisionTree) grow(x *tensor.Tensor, labels, idx []int, depth int) *treeNode {
	counts := make([]int, t.classes)
	for _, i := range idx {
		counts[labels[i]]++
	}
	majority, best := 0, -1
	pure := false
	for c, n := range counts {
		if n > best {
			best, majority = n, c
		}
		if n == len(idx) {
			pure = true
		}
	}
	if pure || depth >= t.MaxDepth || len(idx) < t.MinSamples {
		return &treeNode{leaf: true, class: majority}
	}
	// Accept zero-gain splits on impure nodes: greedy Gini gain is zero at
	// the root of XOR-like functions, but splitting still lets deeper
	// levels separate the classes (the depth bound prevents runaway).
	f, thr, gain := t.bestSplit(x, labels, idx)
	if f < 0 || gain < 0 {
		return &treeNode{leaf: true, class: majority}
	}
	var li, ri []int
	for _, i := range idx {
		if x.At(i, f) <= thr {
			li = append(li, i)
		} else {
			ri = append(ri, i)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{leaf: true, class: majority}
	}
	return &treeNode{
		feature: f, threshold: thr,
		left:  t.grow(x, labels, li, depth+1),
		right: t.grow(x, labels, ri, depth+1),
	}
}

func (t *DecisionTree) bestSplit(x *tensor.Tensor, labels, idx []int) (feature int, threshold, gain float64) {
	parent := gini(countOf(labels, idx, t.classes), len(idx))
	bestGain := math.Inf(-1)
	bestF, bestT := -1, 0.0
	d := x.Dim(1)
	for f := 0; f < d; f++ {
		// Sort indices by feature value; sweep split points.
		sorted := append([]int(nil), idx...)
		sort.Slice(sorted, func(a, b int) bool { return x.At(sorted[a], f) < x.At(sorted[b], f) })
		leftCounts := make([]int, t.classes)
		rightCounts := countOf(labels, idx, t.classes)
		for s := 0; s < len(sorted)-1; s++ {
			c := labels[sorted[s]]
			leftCounts[c]++
			rightCounts[c]--
			v, next := x.At(sorted[s], f), x.At(sorted[s+1], f)
			if v == next {
				continue
			}
			nl, nr := s+1, len(sorted)-s-1
			g := parent -
				(float64(nl)*gini(leftCounts, nl)+float64(nr)*gini(rightCounts, nr))/float64(len(sorted))
			if g > bestGain {
				bestGain = g
				bestF = f
				bestT = (v + next) / 2
			}
		}
	}
	return bestF, bestT, bestGain
}

func countOf(labels, idx []int, classes int) []int {
	c := make([]int, classes)
	for _, i := range idx {
		c[labels[i]]++
	}
	return c
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

// Predict returns the class for one row.
func (t *DecisionTree) Predict(row []float64) int {
	n := t.root
	for !n.leaf {
		if row[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.class
}

// PredictBatch classifies every row of x.
func (t *DecisionTree) PredictBatch(x *tensor.Tensor) []int {
	out := make([]int, x.Dim(0))
	for i := range out {
		out[i] = t.Predict(x.Row(i))
	}
	return out
}

// Depth returns the grown tree's depth.
func (t *DecisionTree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.leaf {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		return 1 + int(math.Max(float64(l), float64(r)))
	}
	return walk(t.root)
}

// TreeSurrogate fits a decision tree to MIMIC the network: it is trained on
// the network's own predictions over x, then its agreement with the network
// on test data measures surrogate fidelity (E27).
func TreeSurrogate(net *nn.Network, x *tensor.Tensor, classes, maxDepth int) *DecisionTree {
	preds := net.Predict(x)
	tree := NewDecisionTree(maxDepth, 4)
	tree.Fit(x, preds, classes)
	return tree
}

// AgreementTree measures the fraction of rows where the tree matches the
// network's prediction.
func AgreementTree(net *nn.Network, tree *DecisionTree, x *tensor.Tensor) float64 {
	np := net.Predict(x)
	tp := tree.PredictBatch(x)
	same := 0
	for i := range np {
		if np[i] == tp[i] {
			same++
		}
	}
	return float64(same) / float64(len(np))
}
