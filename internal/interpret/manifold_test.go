package interpret

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/tensor"
)

// swissRollish generates a 1-D manifold (an arc) embedded in 3-D where
// Euclidean distance is misleading: the arc's ends are close in space but
// far along the manifold.
func swissRollish(rng *rand.Rand, n int) (*tensor.Tensor, []float64) {
	x := tensor.New(n, 3)
	params := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1) // uniform along the manifold
		params[i] = t
		theta := 1.5 * math.Pi * t
		x.Set(math.Cos(theta)+0.01*rng.NormFloat64(), i, 0)
		x.Set(math.Sin(theta)+0.01*rng.NormFloat64(), i, 1)
		x.Set(0.3*t+0.01*rng.NormFloat64(), i, 2)
	}
	return x, params
}

// manifoldCorrelation checks how well 1-D embedding coordinates order the
// points along the known manifold parameter (absolute Spearman-ish
// correlation on ranks).
func manifoldCorrelation(embedded *tensor.Tensor, params []float64) float64 {
	col := make([]float64, embedded.Dim(0))
	for i := range col {
		col[i] = embedded.At(i, 0)
	}
	ra := ranks(col)
	rb := ranks(params)
	n := float64(len(ra))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return math.Abs(1 - 6*d2/(n*(n*n-1)))
}

func TestIsomapRecoversManifoldOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, params := swissRollish(rng, 150)
	emb := Isomap(x, 8, 2)
	corr := manifoldCorrelation(emb, params)
	if corr < 0.95 {
		t.Fatalf("isomap manifold correlation %.3f, want >= 0.95", corr)
	}
}

func TestIsomapBeatsPCAOnCurvedManifold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, params := swissRollish(rng, 150)
	iso := manifoldCorrelation(Isomap(x, 8, 2), params)
	pca := manifoldCorrelation(PCA(x, 2), params)
	t.Logf("manifold ordering: isomap %.3f, pca %.3f", iso, pca)
	if iso <= pca {
		t.Fatalf("isomap (%.3f) should beat PCA (%.3f) on the curved manifold", iso, pca)
	}
}

func TestIsomapHandlesDisconnectedGraph(t *testing.T) {
	// Two far-apart blobs with a small neighbour count: graph disconnects;
	// Isomap must not produce NaN/Inf coordinates.
	rng := rand.New(rand.NewSource(3))
	n := 60
	x := tensor.New(n, 2)
	for i := 0; i < n; i++ {
		base := 0.0
		if i >= n/2 {
			base = 100
		}
		x.Set(base+rng.NormFloat64(), i, 0)
		x.Set(base+rng.NormFloat64(), i, 1)
	}
	emb := Isomap(x, 3, 2)
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("isomap produced non-finite coordinates")
		}
	}
}

func TestLLEPreservesLocalStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x, params := swissRollish(rng, 150)
	emb := LLE(x, 8, 2)
	for _, v := range emb.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("LLE produced non-finite coordinates")
		}
	}
	// LLE should keep manifold neighbours adjacent: points close in the
	// manifold parameter stay close in the embedding.
	np := NeighborPreservation(x, emb, 6)
	if np < 0.35 {
		t.Fatalf("LLE neighbour preservation %.3f too low", np)
	}
	_ = params
}

func TestClassicalMDSRecoversEuclideanConfig(t *testing.T) {
	// MDS on exact Euclidean distances must reproduce pairwise distances.
	rng := rand.New(rand.NewSource(5))
	n := 40
	pts := tensor.RandNormal(rng, 0, 1, n, 2)
	dist := make([][]float64, n)
	for i := 0; i < n; i++ {
		dist[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			dx := pts.At(i, 0) - pts.At(j, 0)
			dy := pts.At(i, 1) - pts.At(j, 1)
			dist[i][j] = math.Sqrt(dx*dx + dy*dy)
		}
	}
	emb := classicalMDS(dist, 2)
	var worst float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := emb.At(i, 0) - emb.At(j, 0)
			dy := emb.At(i, 1) - emb.At(j, 1)
			got := math.Sqrt(dx*dx + dy*dy)
			if e := math.Abs(got - dist[i][j]); e > worst {
				worst = e
			}
		}
	}
	if worst > 0.05 {
		t.Fatalf("MDS distance distortion %.4f too large", worst)
	}
}
