package interpret

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// clusters50D builds well-separated Gaussian clusters in 50 dimensions.
func clusters50D(seed int64, n int) (*tensor.Tensor, []int) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, n, 50, 4, 8)
	return ds.X, ds.Labels
}

func TestPCAPreservesLinearClusters(t *testing.T) {
	x, labels := clusters50D(1, 160)
	p := PCA(x, 2)
	if p.Dim(0) != 160 || p.Dim(1) != 2 {
		t.Fatalf("PCA shape %v", p.Shape())
	}
	purity := SameClassNeighborFraction(p, labels, 8)
	if purity < 0.7 {
		t.Fatalf("PCA purity %.3f on separable clusters", purity)
	}
}

func TestPCAComponentsOrthogonalEffect(t *testing.T) {
	// A rank-2 dataset embeds losslessly into 2 components: neighbor
	// structure is fully preserved.
	rng := rand.New(rand.NewSource(2))
	n := 100
	x := tensor.New(n, 10)
	for i := 0; i < n; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		for j := 0; j < 10; j++ {
			x.Set(a*float64(j)+b*float64(10-j), i, j)
		}
	}
	p := PCA(x, 2)
	if np := NeighborPreservation(x, p, 5); np < 0.95 {
		t.Fatalf("rank-2 data should embed near-perfectly, got %.3f", np)
	}
}

func TestTSNEBeatsPCAOnNonlinearClusters(t *testing.T) {
	// Rings: classes are radius bands in 2D lifted to 20-D nonlinearly;
	// PCA (linear) mixes them, t-SNE separates local structure.
	rng := rand.New(rand.NewSource(3))
	n := 180
	raw := tensor.New(n, 20)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		r := 1 + 2*float64(c) + 0.05*rng.NormFloat64()
		theta := 2 * math.Pi * rng.Float64()
		a, b := r*math.Cos(theta), r*math.Sin(theta)
		for j := 0; j < 20; j++ {
			// Nonlinear random lift.
			raw.Set(math.Sin(a*float64(j+1)/3)+math.Cos(b*float64(j+1)/4), i, j)
		}
	}
	pca := PCA(raw, 2)
	ts := TSNE(raw, TSNEConfig{Perplexity: 15, Iters: 300, LR: 50, Seed: 4})
	pcaPurity := SameClassNeighborFraction(pca, labels, 8)
	tsnePurity := SameClassNeighborFraction(ts, labels, 8)
	t.Logf("purity: PCA %.3f, t-SNE %.3f", pcaPurity, tsnePurity)
	if tsnePurity <= pcaPurity {
		t.Fatalf("t-SNE purity %.3f should beat PCA %.3f on nonlinear clusters", tsnePurity, pcaPurity)
	}
}

func TestTSNESeparatesGaussianClusters(t *testing.T) {
	x, labels := clusters50D(5, 150)
	y := TSNE(x, TSNEConfig{Perplexity: 15, Iters: 300, LR: 50, Seed: 6})
	if purity := SameClassNeighborFraction(y, labels, 8); purity < 0.8 {
		t.Fatalf("t-SNE purity %.3f too low", purity)
	}
}

func trainInterpretNet(t *testing.T, seed int64) (*nn.Network, *data.Dataset) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 600, 6, 3, 4)
	net := nn.NewMLP(rng, nn.MLPConfig{In: 6, Hidden: []int{24}, Out: 3})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 3), nn.TrainConfig{Epochs: 25, BatchSize: 32})
	return net, ds
}

// boundaryRow returns the index of a row whose prediction is least
// confident — LIME explanations are most meaningful near the boundary,
// where the probability surface actually varies.
func boundaryRow(net *nn.Network, x *tensor.Tensor) int {
	probs := nn.Softmax(net.Forward(x, false))
	best, bestConf := 0, math.Inf(1)
	for i := 0; i < probs.Dim(0); i++ {
		conf := probs.Row(i)[probs.ArgMaxRow(i)]
		if conf < bestConf {
			bestConf, best = conf, i
		}
	}
	return best
}

func TestLIMELocallyFaithful(t *testing.T) {
	net, ds := trainInterpretNet(t, 7)
	rng := rand.New(rand.NewSource(8))
	row := boundaryRow(net, ds.X)
	class := net.Predict(ds.X)[row]
	exp := LIME(rng, net, ds.X.Row(row), class, LIMEConfig{
		Samples: 600, KernelWidth: 1.0, Sigma: 0.3,
	})
	if len(exp.Weights) != 6 {
		t.Fatalf("weights len %d", len(exp.Weights))
	}
	if exp.Fidelity < 0.7 {
		t.Fatalf("local fidelity %.3f too low", exp.Fidelity)
	}
}

func TestLIMEFidelityDecaysWithRadius(t *testing.T) {
	net, ds := trainInterpretNet(t, 9)
	row := boundaryRow(net, ds.X)
	class := net.Predict(ds.X)[row]
	tight := LIME(rand.New(rand.NewSource(10)), net, ds.X.Row(row), class, LIMEConfig{
		Samples: 600, KernelWidth: 1.0, Sigma: 0.2,
	})
	wide := LIME(rand.New(rand.NewSource(10)), net, ds.X.Row(row), class, LIMEConfig{
		Samples: 600, KernelWidth: 4.0, Sigma: 3.0,
	})
	if wide.Fidelity >= tight.Fidelity {
		t.Fatalf("wider neighbourhoods should fit worse: tight %.3f vs wide %.3f",
			tight.Fidelity, wide.Fidelity)
	}
}

func TestLIMERecoversLinearModel(t *testing.T) {
	// On a (nearly) linear network region, LIME weights should point in the
	// direction that increases the class probability.
	net, ds := trainInterpretNet(t, 11)
	rng := rand.New(rand.NewSource(12))
	x := ds.X.Row(0)
	class := net.Predict(ds.X)[0]
	exp := LIME(rng, net, x, class, LIMEConfig{Samples: 800, KernelWidth: 1.0, Sigma: 0.2})
	// Step along the weight direction; probability must rise.
	step := make([]float64, len(x))
	var norm float64
	for i, w := range exp.Weights {
		norm += w * w
		step[i] = w
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		t.Skip("degenerate explanation")
	}
	x2 := make([]float64, len(x))
	for i := range x {
		x2[i] = x[i] + 0.3*step[i]/norm
	}
	p1 := nn.Softmax(net.Forward(tensor.FromSlice(append([]float64(nil), x...), 1, len(x)), false)).At(0, class)
	p2 := nn.Softmax(net.Forward(tensor.FromSlice(x2, 1, len(x)), false)).At(0, class)
	if p2 <= p1 {
		t.Fatalf("moving along LIME weights should increase class prob: %.4f -> %.4f", p1, p2)
	}
}

func TestTreeSurrogateAgreesWithNetwork(t *testing.T) {
	net, ds := trainInterpretNet(t, 13)
	tree := TreeSurrogate(net, ds.X, 3, 6)
	ag := AgreementTree(net, tree, ds.X)
	if ag < 0.85 {
		t.Fatalf("tree surrogate agreement %.3f too low", ag)
	}
	if tree.Depth() > 6 {
		t.Fatalf("tree depth %d exceeds bound", tree.Depth())
	}
}

func TestDecisionTreeLearnsXor(t *testing.T) {
	// Sanity: trees handle an axis-aligned XOR a linear model cannot.
	x := tensor.FromSlice([]float64{
		0, 0, 0, 1, 1, 0, 1, 1,
	}, 4, 2)
	labels := []int{0, 1, 1, 0}
	tree := NewDecisionTree(3, 1)
	tree.Fit(x, labels, 2)
	for i := 0; i < 4; i++ {
		if tree.Predict(x.Row(i)) != labels[i] {
			t.Fatalf("XOR row %d misclassified", i)
		}
	}
}

func TestSaliencyConcentratesOnGlyph(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	ds, masks := data.SyntheticDigits(rng, data.DigitsConfig{N: 240})
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	net := nn.NewNetwork(
		nn.NewConv2D(rng, "c1", g, 4),
		nn.NewReLU("r1"),
		nn.NewFlatten("f"),
		nn.NewDense(rng, "out", 4*64, 4),
	)
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.005), rng)
	tr.Fit(ds.X, nn.OneHot(ds.Labels, 4), nn.TrainConfig{Epochs: 50, BatchSize: 16})

	// Average concentration ratio: saliency mass on the true glyph divided
	// by the glyph's area fraction (ratio 1 = no better than uniform).
	var ratio float64
	count := 0
	for i := 0; i < 40; i++ {
		x := tensor.FromSlice(append([]float64(nil), ds.X.Data[i*64:(i+1)*64]...), 1, 1, 8, 8)
		sal := Saliency(net, x, ds.Labels[i])
		mask := masks[ds.Labels[i]]
		area := 0
		for _, m := range mask {
			if m {
				area++
			}
		}
		ratio += SaliencyMass(sal, mask) / (float64(area) / 64.0)
		count++
	}
	ratio /= float64(count)
	if ratio < 1.5 {
		t.Fatalf("saliency concentration ratio %.2f too low (1 = uniform)", ratio)
	}
}

func TestActivationMaximizationIncreasesLogit(t *testing.T) {
	net, _ := trainInterpretNet(t, 15)
	x0 := tensor.New(1, 6)
	before := Logit(net, x0, 1)
	x := ActivationMaximization(net, []int{6}, 1, 100, 0.1, 0.001)
	after := Logit(net, x, 1)
	if after <= before {
		t.Fatalf("activation maximization failed: %.4f -> %.4f", before, after)
	}
}

func TestNetworkInversionMatchesRepresentation(t *testing.T) {
	net, ds := trainInterpretNet(t, 16)
	x := tensor.FromSlice(append([]float64(nil), ds.X.Row(3)...), 1, 6)
	layer := 1 // first ReLU output
	target := RepresentationAt(net, x, layer)
	inv := NetworkInversion(net, []int{6}, layer, target, 400, 0.1)
	got := RepresentationAt(net, inv, layer)
	var se, scale float64
	for i := range target.Data {
		d := target.Data[i] - got.Data[i]
		se += d * d
		scale += target.Data[i] * target.Data[i]
	}
	if se > 0.05*scale {
		t.Fatalf("inversion representation error %.4f too large (scale %.4f)", se, scale)
	}
}
