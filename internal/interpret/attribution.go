package interpret

import (
	"math"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// IntegratedGradients computes the integrated-gradients attribution of the
// class logit for a single example: (x − baseline) ⊙ ∫₀¹ ∇f(baseline +
// α(x−baseline)) dα, approximated with `steps` midpoint samples. Unlike
// plain gradient saliency it satisfies the completeness axiom: attributions
// sum to f(x) − f(baseline), which the tests verify.
func IntegratedGradients(net *nn.Network, x, baseline *tensor.Tensor, class, steps int) *tensor.Tensor {
	if !x.SameShape(baseline) {
		panic("interpret: baseline shape mismatch")
	}
	acc := tensor.New(x.Shape()...)
	diff := tensor.Sub(x, baseline)
	for s := 0; s < steps; s++ {
		alpha := (float64(s) + 0.5) / float64(steps)
		point := tensor.Add(baseline, tensor.Scale(alpha, diff))
		out := net.Forward(point, true)
		dout := tensor.New(out.Shape()...)
		dout.Set(1, 0, class)
		grad := net.Backward(dout)
		acc.AddInPlace(grad)
	}
	acc.ScaleInPlace(1 / float64(steps))
	return tensor.Mul(diff, acc)
}

// CompletenessGap returns |Σ attributions − (f(x) − f(baseline))| relative
// to |f(x) − f(baseline)| — the integrated-gradients sanity metric.
func CompletenessGap(net *nn.Network, x, baseline, attributions *tensor.Tensor, class int) float64 {
	fx := net.Forward(x, false).At(0, class)
	fb := net.Forward(baseline, false).At(0, class)
	want := fx - fb
	got := attributions.Sum()
	denom := math.Abs(want)
	if denom < 1e-12 {
		denom = 1e-12
	}
	return math.Abs(got-want) / denom
}

// OcclusionSaliency attributes by perturbation instead of gradients: each
// input element is replaced by the baseline value in turn and the drop in
// the class logit is recorded. Model-agnostic (no backward pass needed) and
// the standard cross-check for gradient-based maps.
func OcclusionSaliency(net *nn.Network, x *tensor.Tensor, class int, baselineValue float64) *tensor.Tensor {
	ref := net.Forward(x, false).At(0, class)
	sal := tensor.New(x.Shape()...)
	probe := x.Clone()
	for i := range x.Data {
		orig := probe.Data[i]
		probe.Data[i] = baselineValue
		sal.Data[i] = ref - net.Forward(probe, false).At(0, class)
		probe.Data[i] = orig
	}
	return sal
}

// AttributionRankCorrelation computes the Spearman rank correlation between
// two attribution maps' absolute values — used to check that gradient,
// integrated-gradients, and occlusion maps broadly agree on what matters.
func AttributionRankCorrelation(a, b *tensor.Tensor) float64 {
	ra := ranks(absVals(a))
	rb := ranks(absVals(b))
	n := float64(len(ra))
	var d2 float64
	for i := range ra {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/(n*(n*n-1))
}

func absVals(t *tensor.Tensor) []float64 {
	out := make([]float64, t.Size())
	for i, v := range t.Data {
		out[i] = math.Abs(v)
	}
	return out
}

// ranks assigns 1-based average-free ranks (ties broken by index).
func ranks(vals []float64) []float64 {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	// Simple insertion sort by value (attribution maps are small).
	for i := 1; i < len(idx); i++ {
		j := i
		for j > 0 && vals[idx[j-1]] > vals[idx[j]] {
			idx[j-1], idx[j] = idx[j], idx[j-1]
			j--
		}
	}
	out := make([]float64, len(vals))
	for rank, i := range idx {
		out[i] = float64(rank + 1)
	}
	return out
}
