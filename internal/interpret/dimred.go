// Package interpret implements the interpretable-deep-learning techniques
// of Part 3.2 of the tutorial: dimensionality reduction (PCA and t-SNE),
// local surrogate explanations (LIME), global surrogacy (decision trees and
// distilled students), gradient saliency maps, activation maximization, and
// network inversion.
package interpret

import (
	"math"
	"math/rand"

	"dlsys/internal/tensor"
)

// PCA projects rows of x onto the top-k principal components, computed by
// power iteration with deflation on the covariance matrix.
func PCA(x *tensor.Tensor, k int) *tensor.Tensor {
	n, d := x.Dim(0), x.Dim(1)
	// Center.
	centered := x.Clone()
	for j := 0; j < d; j++ {
		var mu float64
		for i := 0; i < n; i++ {
			mu += centered.At(i, j)
		}
		mu /= float64(n)
		for i := 0; i < n; i++ {
			centered.Set(centered.At(i, j)-mu, i, j)
		}
	}
	// Covariance (d×d).
	cov := tensor.MatMulTransA(centered, centered)
	cov.ScaleInPlace(1 / float64(n))
	comps := make([][]float64, k)
	for c := 0; c < k; c++ {
		comps[c] = powerIteration(cov, 200)
		deflate(cov, comps[c])
	}
	out := tensor.New(n, k)
	for i := 0; i < n; i++ {
		row := centered.Row(i)
		for c := 0; c < k; c++ {
			var s float64
			for j := 0; j < d; j++ {
				s += row[j] * comps[c][j]
			}
			out.Set(s, i, c)
		}
	}
	return out
}

// powerIteration returns the dominant eigenvector of the symmetric matrix.
func powerIteration(m *tensor.Tensor, iters int) []float64 {
	d := m.Dim(0)
	v := make([]float64, d)
	// Deterministic non-degenerate start.
	for i := range v {
		v[i] = 1 / math.Sqrt(float64(d)+float64(i))
	}
	for it := 0; it < iters; it++ {
		nv := make([]float64, d)
		for i := 0; i < d; i++ {
			row := m.Row(i)
			var s float64
			for j := 0; j < d; j++ {
				s += row[j] * v[j]
			}
			nv[i] = s
		}
		var norm float64
		for _, x := range nv {
			norm += x * x
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			return v
		}
		for i := range nv {
			nv[i] /= norm
		}
		v = nv
	}
	return v
}

// deflate removes the component's subspace: M ← M − λ·vvᵀ.
func deflate(m *tensor.Tensor, v []float64) {
	d := m.Dim(0)
	// λ = vᵀMv
	var lambda float64
	for i := 0; i < d; i++ {
		row := m.Row(i)
		var s float64
		for j := 0; j < d; j++ {
			s += row[j] * v[j]
		}
		lambda += v[i] * s
	}
	for i := 0; i < d; i++ {
		row := m.Row(i)
		for j := 0; j < d; j++ {
			row[j] -= lambda * v[i] * v[j]
		}
	}
}

// TSNEConfig controls the t-SNE embedding.
type TSNEConfig struct {
	Perplexity float64 // default 20
	Iters      int     // default 400
	LR         float64 // default 100
	Seed       int64
}

// TSNE embeds rows of x into 2-D with t-distributed stochastic neighbor
// embedding (van der Maaten & Hinton): Gaussian affinities with
// per-point bandwidths matched to the target perplexity, Student-t
// low-dimensional kernel, gradient descent with momentum and early
// exaggeration.
func TSNE(x *tensor.Tensor, cfg TSNEConfig) *tensor.Tensor {
	if cfg.Perplexity == 0 {
		cfg.Perplexity = 20
	}
	if cfg.Iters == 0 {
		cfg.Iters = 400
	}
	if cfg.LR == 0 {
		cfg.LR = 100
	}
	n := x.Dim(0)
	d2 := pairwiseSqDist(x)
	p := affinities(d2, cfg.Perplexity)
	// Symmetrize and normalise.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (p[i][j] + p[j][i]) / (2 * float64(n))
			p[i][j], p[j][i] = v, v
		}
		p[i][i] = 0
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	y := tensor.RandNormal(rng, 0, 1e-2, n, 2)
	vel := tensor.New(n, 2)
	for iter := 0; iter < cfg.Iters; iter++ {
		exag := 1.0
		if iter < cfg.Iters/4 {
			exag = 4
		}
		// q_ij ∝ (1 + ||yi-yj||²)^-1
		var qsum float64
		w := make([][]float64, n)
		for i := 0; i < n; i++ {
			w[i] = make([]float64, n)
			yi := y.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				yj := y.Row(j)
				dx := yi[0] - yj[0]
				dy := yi[1] - yj[1]
				w[i][j] = 1 / (1 + dx*dx + dy*dy)
				qsum += w[i][j]
			}
		}
		grad := tensor.New(n, 2)
		for i := 0; i < n; i++ {
			yi := y.Row(i)
			gi := grad.Row(i)
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				yj := y.Row(j)
				q := w[i][j] / qsum
				mult := 4 * (exag*p[i][j] - q) * w[i][j]
				gi[0] += mult * (yi[0] - yj[0])
				gi[1] += mult * (yi[1] - yj[1])
			}
		}
		momentum := 0.5
		if iter > 100 {
			momentum = 0.8
		}
		for i := range y.Data {
			vel.Data[i] = momentum*vel.Data[i] - cfg.LR*grad.Data[i]
			y.Data[i] += vel.Data[i]
		}
	}
	return y
}

func pairwiseSqDist(x *tensor.Tensor) [][]float64 {
	n := x.Dim(0)
	d2 := make([][]float64, n)
	for i := range d2 {
		d2[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		ri := x.Row(i)
		for j := i + 1; j < n; j++ {
			rj := x.Row(j)
			var s float64
			for k := range ri {
				d := ri[k] - rj[k]
				s += d * d
			}
			d2[i][j], d2[j][i] = s, s
		}
	}
	return d2
}

// affinities computes row-conditional Gaussian affinities p_{j|i} with
// per-row bandwidth found by binary search to match the target perplexity.
func affinities(d2 [][]float64, perplexity float64) [][]float64 {
	n := len(d2)
	target := math.Log(perplexity)
	p := make([][]float64, n)
	for i := 0; i < n; i++ {
		p[i] = make([]float64, n)
		lo, hi := 1e-20, 1e20
		beta := 1.0 // 1/(2σ²)
		for it := 0; it < 50; it++ {
			var sum float64
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				p[i][j] = math.Exp(-d2[i][j] * beta)
				sum += p[i][j]
			}
			if sum == 0 {
				sum = 1e-300
			}
			// Shannon entropy of the conditional distribution.
			var h float64
			for j := 0; j < n; j++ {
				if j == i || p[i][j] == 0 {
					continue
				}
				pj := p[i][j] / sum
				h -= pj * math.Log(pj)
			}
			if math.Abs(h-target) < 1e-5 {
				for j := 0; j < n; j++ {
					p[i][j] /= sum
				}
				break
			}
			if h > target {
				lo = beta
				if hi == 1e20 {
					beta *= 2
				} else {
					beta = (lo + hi) / 2
				}
			} else {
				hi = beta
				beta = (lo + hi) / 2
			}
			if it == 49 {
				for j := 0; j < n; j++ {
					p[i][j] /= sum
				}
			}
		}
	}
	return p
}

// NeighborPreservation measures what fraction of each point's k nearest
// neighbours in the original space remain among its k nearest in the
// embedding — the standard local-structure fidelity score.
func NeighborPreservation(orig, embedded *tensor.Tensor, k int) float64 {
	n := orig.Dim(0)
	var total float64
	for i := 0; i < n; i++ {
		a := kNearest(orig, i, k)
		b := kNearest(embedded, i, k)
		set := map[int]bool{}
		for _, j := range a {
			set[j] = true
		}
		hit := 0
		for _, j := range b {
			if set[j] {
				hit++
			}
		}
		total += float64(hit) / float64(k)
	}
	return total / float64(n)
}

// SameClassNeighborFraction measures the average fraction of each point's k
// nearest embedded neighbours sharing its label — cluster purity in the
// embedding.
func SameClassNeighborFraction(embedded *tensor.Tensor, labels []int, k int) float64 {
	n := embedded.Dim(0)
	var total float64
	for i := 0; i < n; i++ {
		hit := 0
		for _, j := range kNearest(embedded, i, k) {
			if labels[j] == labels[i] {
				hit++
			}
		}
		total += float64(hit) / float64(k)
	}
	return total / float64(n)
}

func kNearest(x *tensor.Tensor, i, k int) []int {
	n := x.Dim(0)
	type nd struct {
		j int
		d float64
	}
	ri := x.Row(i)
	best := make([]nd, 0, k+1)
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		rj := x.Row(j)
		var s float64
		for t := range ri {
			d := ri[t] - rj[t]
			s += d * d
		}
		// Insert into the running top-k (k is small).
		pos := len(best)
		for pos > 0 && best[pos-1].d > s {
			pos--
		}
		if pos < k {
			best = append(best, nd{})
			copy(best[pos+1:], best[pos:])
			best[pos] = nd{j, s}
			if len(best) > k {
				best = best[:k]
			}
		}
	}
	out := make([]int, len(best))
	for t, b := range best {
		out[t] = b.j
	}
	return out
}
