package interpret

import (
	"math"
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// LIMEConfig controls a local explanation.
type LIMEConfig struct {
	Samples     int     // perturbations drawn around the input
	KernelWidth float64 // locality kernel width (in feature std units)
	Sigma       float64 // perturbation std
	Ridge       float64 // L2 regularisation of the surrogate
}

// Explanation is a local linear surrogate of the model around one input:
// score(x) ≈ Intercept + Σ Weights[j]·x[j], with Fidelity the
// kernel-weighted R² of that fit.
type Explanation struct {
	Weights   []float64
	Intercept float64
	Fidelity  float64
}

// LIME explains the model's positive-probability for class `class` at input
// x (one row) by sampling perturbations, querying the model, and fitting a
// locally-weighted ridge regression.
func LIME(rng *rand.Rand, net *nn.Network, x []float64, class int, cfg LIMEConfig) Explanation {
	if cfg.Samples == 0 {
		cfg.Samples = 500
	}
	if cfg.KernelWidth == 0 {
		cfg.KernelWidth = 0.75
	}
	if cfg.Sigma == 0 {
		cfg.Sigma = 0.5
	}
	if cfg.Ridge == 0 {
		cfg.Ridge = 1e-3
	}
	d := len(x)
	// Sample perturbations and model responses.
	xs := tensor.New(cfg.Samples, d)
	for i := 0; i < cfg.Samples; i++ {
		row := xs.Row(i)
		for j := 0; j < d; j++ {
			row[j] = x[j] + cfg.Sigma*rng.NormFloat64()
		}
	}
	probs := nn.Softmax(net.Forward(xs, false))
	ys := make([]float64, cfg.Samples)
	ws := make([]float64, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		ys[i] = probs.At(i, class)
		var dist float64
		row := xs.Row(i)
		for j := 0; j < d; j++ {
			dd := row[j] - x[j]
			dist += dd * dd
		}
		ws[i] = math.Exp(-dist / (cfg.KernelWidth * cfg.KernelWidth))
	}
	// Weighted ridge regression on [1, x-x0].
	// Solve (AᵀWA + λI) β = AᵀWy with A = [1 | Δx].
	k := d + 1
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k)
	}
	aty := make([]float64, k)
	feat := make([]float64, k)
	for s := 0; s < cfg.Samples; s++ {
		feat[0] = 1
		row := xs.Row(s)
		for j := 0; j < d; j++ {
			feat[j+1] = row[j] - x[j]
		}
		w := ws[s]
		for a := 0; a < k; a++ {
			for b := 0; b < k; b++ {
				ata[a][b] += w * feat[a] * feat[b]
			}
			aty[a] += w * feat[a] * ys[s]
		}
	}
	for a := 1; a < k; a++ {
		ata[a][a] += cfg.Ridge
	}
	beta := solveLinear(ata, aty)

	// Fidelity: weighted R².
	var wsum, ybar float64
	for s := 0; s < cfg.Samples; s++ {
		wsum += ws[s]
		ybar += ws[s] * ys[s]
	}
	ybar /= wsum
	var ssRes, ssTot float64
	for s := 0; s < cfg.Samples; s++ {
		pred := beta[0]
		row := xs.Row(s)
		for j := 0; j < d; j++ {
			pred += beta[j+1] * (row[j] - x[j])
		}
		ssRes += ws[s] * (ys[s] - pred) * (ys[s] - pred)
		ssTot += ws[s] * (ys[s] - ybar) * (ys[s] - ybar)
	}
	fid := 1.0
	if ssTot > 0 {
		fid = 1 - ssRes/ssTot
	}
	return Explanation{Weights: beta[1:], Intercept: beta[0], Fidelity: fid}
}

// solveLinear solves Ax=b by Gaussian elimination with partial pivoting.
func solveLinear(a [][]float64, b []float64) []float64 {
	n := len(b)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = append([]float64(nil), a[i]...)
		m[i] = append(m[i], b[i])
	}
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		if m[col][col] == 0 {
			continue
		}
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		if m[r][r] == 0 {
			continue
		}
		s := m[r][n]
		for c := r + 1; c < n; c++ {
			s -= m[r][c] * x[c]
		}
		x[r] = s / m[r][r]
	}
	return x
}
