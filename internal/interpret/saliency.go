package interpret

import (
	"math"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Saliency returns |∂logit_class/∂input| for each input element of a single
// example (any input shape): the gradient-based attribution map the
// tutorial's visualization section describes.
func Saliency(net *nn.Network, x *tensor.Tensor, class int) *tensor.Tensor {
	out := net.Forward(x, true)
	dout := tensor.New(out.Shape()...)
	dout.Set(1, 0, class)
	dx := net.Backward(dout)
	return tensor.Apply(dx, math.Abs)
}

// SaliencyMass returns the fraction of total saliency falling on the pixels
// marked true in mask — how concentrated the attribution is on a known
// ground-truth region (E28).
func SaliencyMass(sal *tensor.Tensor, mask []bool) float64 {
	var in, total float64
	for i, v := range sal.Data {
		total += v
		if mask[i%len(mask)] {
			in += v
		}
	}
	if total == 0 {
		return 0
	}
	return in / total
}

// ActivationMaximization synthesises an input that maximises the given
// class logit by gradient ascent with L2 decay, starting from zeros: the
// result visualises what the network "looks for" in that class.
func ActivationMaximization(net *nn.Network, inShape []int, class int, steps int, lr, decay float64) *tensor.Tensor {
	shape := append([]int{1}, inShape...)
	x := tensor.New(shape...)
	for s := 0; s < steps; s++ {
		out := net.Forward(x, true)
		dout := tensor.New(out.Shape()...)
		dout.Set(1, 0, class)
		dx := net.Backward(dout)
		for i := range x.Data {
			x.Data[i] += lr*dx.Data[i] - decay*x.Data[i]
		}
	}
	return x
}

// Logit returns the class logit of a single example, used to verify that
// activation maximization actually increased the target activation.
func Logit(net *nn.Network, x *tensor.Tensor, class int) float64 {
	return net.Forward(x, false).At(0, class)
}

// NetworkInversion reconstructs an input whose representation at layer
// `layer` matches the given target representation, by gradient descent on
// the squared representation distance — visualising which input aspects a
// layer preserves.
func NetworkInversion(net *nn.Network, inShape []int, layer int, target *tensor.Tensor, steps int, lr float64) *tensor.Tensor {
	shape := append([]int{1}, inShape...)
	x := tensor.New(shape...)
	for s := 0; s < steps; s++ {
		// Forward through the prefix in train mode (caches for backward).
		h := x
		for li := 0; li <= layer; li++ {
			h = net.Layers[li].Forward(h, true)
		}
		// d/dh ½||h - target||² = h - target.
		dh := tensor.Sub(h, target)
		for li := layer; li >= 0; li-- {
			dh = net.Layers[li].Backward(dh)
		}
		for i := range x.Data {
			x.Data[i] -= lr * dh.Data[i]
		}
	}
	return x
}

// RepresentationAt runs a single example through layers [0, layer] in
// inference mode.
func RepresentationAt(net *nn.Network, x *tensor.Tensor, layer int) *tensor.Tensor {
	h := x
	for li := 0; li <= layer; li++ {
		h = net.Layers[li].Forward(h, false)
	}
	return h
}
