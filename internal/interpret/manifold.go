package interpret

import (
	"container/heap"
	"math"

	"dlsys/internal/tensor"
)

// Isomap embeds rows of x into k dimensions by preserving GEODESIC
// distances: build a kNN graph, compute all-pairs shortest paths over it,
// and apply classical MDS to the geodesic distance matrix. One of the
// "t-SNE variants" the tutorial names for understanding high-dimensional
// deep-learning data.
func Isomap(x *tensor.Tensor, neighbors, k int) *tensor.Tensor {
	n := x.Dim(0)
	d2 := pairwiseSqDist(x)
	// kNN graph with Euclidean edge weights.
	adj := make([][]graphEdge, n)
	for i := 0; i < n; i++ {
		nbrs := kNearest(x, i, neighbors)
		for _, j := range nbrs {
			w := math.Sqrt(d2[i][j])
			adj[i] = append(adj[i], graphEdge{to: j, w: w})
			adj[j] = append(adj[j], graphEdge{to: i, w: w}) // symmetrise
		}
	}
	// All-pairs shortest paths: Dijkstra from every node.
	geo := make([][]float64, n)
	var maxFinite float64
	for i := 0; i < n; i++ {
		geo[i] = dijkstra(adj, i)
		for _, v := range geo[i] {
			if !math.IsInf(v, 1) && v > maxFinite {
				maxFinite = v
			}
		}
	}
	// Disconnected pairs: cap at a large finite distance so MDS stays sane.
	for i := range geo {
		for j := range geo[i] {
			if math.IsInf(geo[i][j], 1) {
				geo[i][j] = maxFinite * 1.5
			}
		}
	}
	return classicalMDS(geo, k)
}

type graphEdge struct {
	to int
	w  float64
}

type pqItem struct {
	node int
	dist float64
}
type priorityQueue []pqItem

func (p priorityQueue) Len() int           { return len(p) }
func (p priorityQueue) Less(i, j int) bool { return p[i].dist < p[j].dist }
func (p priorityQueue) Swap(i, j int)      { p[i], p[j] = p[j], p[i] }
func (p *priorityQueue) Push(x any)        { *p = append(*p, x.(pqItem)) }
func (p *priorityQueue) Pop() any          { old := *p; it := old[len(old)-1]; *p = old[:len(old)-1]; return it }

func dijkstra(adj [][]graphEdge, src int) []float64 {
	n := len(adj)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &priorityQueue{{node: src, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		if it.dist > dist[it.node] {
			continue
		}
		for _, e := range adj[it.node] {
			if nd := it.dist + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				heap.Push(pq, pqItem{node: e.to, dist: nd})
			}
		}
	}
	return dist
}

// classicalMDS converts a distance matrix into a k-dimensional embedding:
// double-center the squared distances (B = -½ J D² J) and project onto the
// top-k eigenvectors scaled by sqrt of their eigenvalues.
func classicalMDS(dist [][]float64, k int) *tensor.Tensor {
	n := len(dist)
	b := tensor.New(n, n)
	rowMean := make([]float64, n)
	var grand float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d2 := dist[i][j] * dist[i][j]
			b.Set(d2, i, j)
			rowMean[i] += d2
		}
		rowMean[i] /= float64(n)
		grand += rowMean[i]
	}
	grand /= float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := -0.5 * (b.At(i, j) - rowMean[i] - rowMean[j] + grand)
			b.Set(v, i, j)
		}
	}
	out := tensor.New(n, k)
	for c := 0; c < k; c++ {
		vec := powerIteration(b, 300)
		// Eigenvalue via Rayleigh quotient.
		var lambda float64
		for i := 0; i < n; i++ {
			row := b.Row(i)
			var s float64
			for j := 0; j < n; j++ {
				s += row[j] * vec[j]
			}
			lambda += vec[i] * s
		}
		scale := 0.0
		if lambda > 0 {
			scale = math.Sqrt(lambda)
		}
		for i := 0; i < n; i++ {
			out.Set(vec[i]*scale, i, c)
		}
		deflate(b, vec)
	}
	return out
}

// LLE embeds rows of x with Locally Linear Embedding: each point is
// expressed as a weighted combination of its neighbours, and the embedding
// preserves those reconstruction weights. The other named t-SNE variant in
// the tutorial.
func LLE(x *tensor.Tensor, neighbors, k int) *tensor.Tensor {
	n, d := x.Dim(0), x.Dim(1)
	// Reconstruction weights.
	w := make([][]float64, n)
	nbrIdx := make([][]int, n)
	for i := 0; i < n; i++ {
		nbrs := kNearest(x, i, neighbors)
		nbrIdx[i] = nbrs
		m := len(nbrs)
		// Local Gram matrix of centered neighbours.
		g := make([][]float64, m)
		for a := 0; a < m; a++ {
			g[a] = make([]float64, m)
		}
		diffs := make([][]float64, m)
		for a, j := range nbrs {
			diffs[a] = make([]float64, d)
			for t := 0; t < d; t++ {
				diffs[a][t] = x.At(j, t) - x.At(i, t)
			}
		}
		var trace float64
		for a := 0; a < m; a++ {
			for bIdx := 0; bIdx < m; bIdx++ {
				var s float64
				for t := 0; t < d; t++ {
					s += diffs[a][t] * diffs[bIdx][t]
				}
				g[a][bIdx] = s
				if a == bIdx {
					trace += s
				}
			}
		}
		// Regularise (standard LLE conditioning) and solve G w = 1.
		reg := 1e-3 * trace / float64(m)
		if reg == 0 {
			reg = 1e-9
		}
		ones := make([]float64, m)
		for a := 0; a < m; a++ {
			g[a][a] += reg
			ones[a] = 1
		}
		wi := solveLinear(g, ones)
		var sum float64
		for _, v := range wi {
			sum += v
		}
		if sum == 0 {
			sum = 1
		}
		for a := range wi {
			wi[a] /= sum
		}
		w[i] = wi
	}
	// M = (I-W)ᵀ(I-W); embed with the eigenvectors of the SMALLEST nonzero
	// eigenvalues. The smallest eigenvalues of M cluster near zero, so
	// shifted power iteration cannot separate them; inverse iteration on
	// (M + μI) converges fast instead. The very smallest eigenvector is the
	// constant vector (eigenvalue 0), which LLE discards by keeping every
	// iterate orthogonal to it.
	iw := tensor.New(n, n)
	for i := 0; i < n; i++ {
		iw.Set(1, i, i)
		for a, j := range nbrIdx[i] {
			iw.Set(iw.At(i, j)-w[i][a], i, j)
		}
	}
	mm := tensor.MatMulTransA(iw, iw)
	vecs := smallestEigvecs(mm, k)
	out := tensor.New(n, k)
	for c := 0; c < k; c++ {
		for i := 0; i < n; i++ {
			out.Set(vecs[c][i], i, c)
		}
	}
	return out
}

// smallestEigvecs returns the k eigenvectors of symmetric m with the
// smallest eigenvalues, EXCLUDING the constant vector, via inverse power
// iteration with Gram-Schmidt deflation.
func smallestEigvecs(m *tensor.Tensor, k int) [][]float64 {
	n := m.Dim(0)
	// Regularised copy for the solves.
	a := make([][]float64, n)
	for i := 0; i < n; i++ {
		a[i] = append([]float64(nil), m.Row(i)...)
		a[i][i] += 1e-8
	}
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 1 / math.Sqrt(float64(n))
	}
	found := [][]float64{constant}
	out := make([][]float64, 0, k)
	for c := 0; c < k; c++ {
		v := make([]float64, n)
		for i := range v {
			// Deterministic varied start.
			v[i] = math.Sin(float64((c+2)*(i+1)) * 0.7)
		}
		orthonormalize(v, found)
		for it := 0; it < 30; it++ {
			v = solveLinear(a, v)
			orthonormalize(v, found)
		}
		found = append(found, v)
		out = append(out, v)
	}
	return out
}

// orthonormalize removes the components of v along each basis vector and
// normalizes v in place.
func orthonormalize(v []float64, basis [][]float64) {
	for _, b := range basis {
		var dot float64
		for i := range v {
			dot += v[i] * b[i]
		}
		for i := range v {
			v[i] -= dot * b[i]
		}
	}
	var norm float64
	for _, x := range v {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return
	}
	for i := range v {
		v[i] /= norm
	}
}
