// Package nlq implements a small natural-language query interface over the
// column store — Part 2's "recurrent neural networks ... enable natural
// language querying of databases" (Sen et al.), scaled to this repository:
// a learned intent classifier over bag-of-words features maps an English
// utterance to a query template (aggregate + target column + optional
// filter column), numeric bounds are extracted by scanning, and the query
// executes against internal/db. The baseline is a hand-written keyword
// matcher that only knows canonical words; the classifier learns synonyms
// and phrasing from examples.
package nlq

import (
	"math/rand"
	"strconv"
	"strings"

	"dlsys/internal/db"
	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Query is the structured form an utterance parses to.
type Query struct {
	Agg       db.Agg
	TargetCol string
	FilterCol string // empty = no filter
	Lo, Hi    float64
}

// Execute runs the query against a table. A parse that hallucinated a
// column or aggregate surfaces as the table's typed argument error rather
// than a panic — the natural failure mode for language-derived queries.
func (q Query) Execute(t *db.Table) (float64, error) {
	var preds []db.Pred
	if q.FilterCol != "" {
		preds = append(preds, db.Pred{Col: q.FilterCol, Lo: q.Lo, Hi: q.Hi})
	}
	return t.Aggregate(q.Agg, q.TargetCol, preds)
}

// aggNames maps aggregate ids to their synonym sets. The FIRST synonym is
// the canonical word the keyword baseline knows.
var aggNames = map[db.Agg][]string{
	db.AggMean:  {"average", "mean", "typical", "expected"},
	db.AggSum:   {"sum", "total", "combined", "overall"},
	db.AggCount: {"count", "many", "number"},
	db.AggMin:   {"minimum", "smallest", "lowest", "least"},
	db.AggMax:   {"maximum", "largest", "highest", "biggest"},
}

// Intent identifies a (aggregate, target, filter) combination as a class.
type Intent struct {
	Agg       db.Agg
	TargetCol string
	FilterCol string
}

// Schema describes the queryable table for utterance generation and
// parsing.
type Schema struct {
	Columns []string
	// Synonyms[col] lists ways users refer to the column; the first entry
	// is the canonical name.
	Synonyms map[string][]string
}

// Intents enumerates every possible intent for the schema.
func (s Schema) Intents() []Intent {
	var out []Intent
	for _, agg := range []db.Agg{db.AggMean, db.AggSum, db.AggCount, db.AggMin, db.AggMax} {
		for _, target := range s.Columns {
			out = append(out, Intent{Agg: agg, TargetCol: target})
			for _, filter := range s.Columns {
				if filter != target {
					out = append(out, Intent{Agg: agg, TargetCol: target, FilterCol: filter})
				}
			}
		}
	}
	return out
}

// Utterance is a labelled training example.
type Utterance struct {
	Text   string
	Intent Intent
	Lo, Hi float64
}

// GenerateUtterances produces labelled examples by sampling templates and
// synonyms for each intent.
func GenerateUtterances(rng *rand.Rand, s Schema, perIntent int) []Utterance {
	var out []Utterance
	for _, intent := range s.Intents() {
		for k := 0; k < perIntent; k++ {
			out = append(out, renderUtterance(rng, s, intent))
		}
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func pick(rng *rand.Rand, opts []string) string { return opts[rng.Intn(len(opts))] }

func renderUtterance(rng *rand.Rand, s Schema, intent Intent) Utterance {
	aggWord := pick(rng, aggNames[intent.Agg])
	target := pick(rng, s.Synonyms[intent.TargetCol])
	var b strings.Builder
	openers := []string{"what is the", "show me the", "tell me the", "give the", "find the"}
	if intent.Agg == db.AggCount {
		countOpeners := []string{"how many", "count the", "what number of"}
		b.WriteString(pick(rng, countOpeners))
		b.WriteString(" ")
		b.WriteString(target)
		b.WriteString(" records")
	} else {
		b.WriteString(pick(rng, openers))
		b.WriteString(" ")
		b.WriteString(aggWord)
		b.WriteString(" ")
		b.WriteString(target)
	}
	u := Utterance{Intent: intent}
	if intent.FilterCol != "" {
		filter := pick(rng, s.Synonyms[intent.FilterCol])
		lo := float64(rng.Intn(40))
		hi := lo + 1 + float64(rng.Intn(40))
		u.Lo, u.Hi = lo, hi
		connectors := []string{"where", "for", "with", "when"}
		b.WriteString(" ")
		b.WriteString(pick(rng, connectors))
		b.WriteString(" ")
		b.WriteString(filter)
		b.WriteString(" is between ")
		b.WriteString(strconv.FormatFloat(lo, 'f', -1, 64))
		b.WriteString(" and ")
		b.WriteString(strconv.FormatFloat(hi, 'f', -1, 64))
	}
	u.Text = b.String()
	return u
}

// Vocabulary is the token index used by the bag-of-words encoder.
type Vocabulary struct {
	index map[string]int
}

// BuildVocabulary indexes every token in the corpus.
func BuildVocabulary(utterances []Utterance) *Vocabulary {
	v := &Vocabulary{index: map[string]int{}}
	for _, u := range utterances {
		for _, tok := range tokens(u.Text) {
			if _, ok := v.index[tok]; !ok {
				v.index[tok] = len(v.index)
			}
		}
	}
	return v
}

// Size returns the vocabulary size.
func (v *Vocabulary) Size() int { return len(v.index) }

func tokens(text string) []string {
	fields := strings.Fields(strings.ToLower(text))
	out := fields[:0]
	for _, f := range fields {
		// Drop pure numbers: bounds are extracted separately, and their
		// surface forms would bloat the vocabulary.
		if _, err := strconv.ParseFloat(f, 64); err == nil {
			continue
		}
		out = append(out, f)
	}
	return out
}

// connectorWords split an utterance into its projection part and its
// filter part; the two segments are encoded separately because plain
// bag-of-words cannot tell "average salary where age ..." from
// "average age where salary ..." (same bag, different queries).
var connectorWords = map[string]bool{"where": true, "for": true, "with": true, "when": true}

// FeatureSize is the encoded width: one bag per segment.
func (v *Vocabulary) FeatureSize() int { return 2 * len(v.index) }

// Encode produces the segmented bag-of-words feature row for an utterance:
// tokens before the first connector fill the first half, tokens after fill
// the second half.
func (v *Vocabulary) Encode(text string) []float64 {
	f := make([]float64, 2*len(v.index))
	segment := 0
	for _, tok := range tokens(text) {
		if connectorWords[tok] {
			segment = 1
		}
		if i, ok := v.index[tok]; ok {
			f[segment*len(v.index)+i] = 1
		}
	}
	return f
}

// Parser is the trained NL→query system.
type Parser struct {
	vocab   *Vocabulary
	net     *nn.Network
	intents []Intent
}

// TrainParser fits the intent classifier on labelled utterances.
func TrainParser(rng *rand.Rand, s Schema, utterances []Utterance, epochs int) *Parser {
	vocab := BuildVocabulary(utterances)
	intents := s.Intents()
	intentIdx := map[Intent]int{}
	for i, it := range intents {
		intentIdx[it] = i
	}
	x := tensor.New(len(utterances), vocab.FeatureSize())
	labels := make([]int, len(utterances))
	for i, u := range utterances {
		copy(x.Row(i), vocab.Encode(u.Text))
		labels[i] = intentIdx[u.Intent]
	}
	net := nn.NewMLP(rng, nn.MLPConfig{In: vocab.FeatureSize(), Hidden: []int{48}, Out: len(intents)})
	tr := nn.NewTrainer(net, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(x, nn.OneHot(labels, len(intents)), nn.TrainConfig{Epochs: epochs, BatchSize: 32})
	return &Parser{vocab: vocab, net: net, intents: intents}
}

// Parse converts an utterance to a structured query.
func (p *Parser) Parse(text string) Query {
	x := tensor.FromSlice(p.vocab.Encode(text), 1, p.vocab.FeatureSize())
	intent := p.intents[p.net.Predict(x)[0]]
	q := Query{Agg: intent.Agg, TargetCol: intent.TargetCol, FilterCol: intent.FilterCol}
	if q.FilterCol != "" {
		q.Lo, q.Hi = extractBounds(text)
	}
	return q
}

// extractBounds pulls the first two numbers from the utterance.
func extractBounds(text string) (lo, hi float64) {
	var nums []float64
	for _, f := range strings.Fields(text) {
		if v, err := strconv.ParseFloat(strings.Trim(f, ",.?"), 64); err == nil {
			nums = append(nums, v)
		}
	}
	if len(nums) >= 2 {
		lo, hi = nums[0], nums[1]
		if lo > hi {
			lo, hi = hi, lo
		}
	}
	return lo, hi
}

// KeywordBaseline parses with exact canonical-word matching only: it knows
// "average", "sum", "count", "minimum", "maximum" and the canonical column
// names, so synonyms and paraphrases fall through to defaults.
type KeywordBaseline struct {
	Schema Schema
}

// Parse applies the keyword rules.
func (k *KeywordBaseline) Parse(text string) Query {
	lower := " " + strings.ToLower(text) + " "
	q := Query{Agg: db.AggCount}
	for agg, names := range aggNames {
		if strings.Contains(lower, " "+names[0]+" ") {
			q.Agg = agg
			break
		}
	}
	// First canonical column mentioned = target; second = filter.
	type hit struct {
		col string
		pos int
	}
	var hits []hit
	for _, col := range k.Schema.Columns {
		if p := strings.Index(lower, " "+col+" "); p >= 0 {
			hits = append(hits, hit{col, p})
		}
	}
	for i := 0; i < len(hits); i++ {
		for j := i + 1; j < len(hits); j++ {
			if hits[j].pos < hits[i].pos {
				hits[i], hits[j] = hits[j], hits[i]
			}
		}
	}
	if len(hits) > 0 {
		q.TargetCol = hits[0].col
	} else {
		q.TargetCol = k.Schema.Columns[0]
	}
	if len(hits) > 1 {
		q.FilterCol = hits[1].col
		q.Lo, q.Hi = extractBounds(text)
	}
	return q
}

// ExactMatch reports whether a parsed query matches the labelled truth.
func ExactMatch(got Query, u Utterance) bool {
	if got.Agg != u.Intent.Agg || got.TargetCol != u.Intent.TargetCol || got.FilterCol != u.Intent.FilterCol {
		return false
	}
	if u.Intent.FilterCol != "" && (got.Lo != u.Lo || got.Hi != u.Hi) {
		return false
	}
	return true
}

// Accuracy measures exact-parse accuracy of a parse function over
// utterances.
func Accuracy(parse func(string) Query, utterances []Utterance) float64 {
	hit := 0
	for _, u := range utterances {
		if ExactMatch(parse(u.Text), u) {
			hit++
		}
	}
	return float64(hit) / float64(len(utterances))
}
