package nlq

import (
	"errors"
	"math/rand"
	"testing"

	"dlsys/internal/db"
)

// must unwraps (value, error) pairs whose arguments are valid by
// construction; a failure is a test bug, so it panics.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

func testSchema() Schema {
	return Schema{
		Columns: []string{"salary", "age"},
		Synonyms: map[string][]string{
			"salary": {"salary", "pay", "income", "wage"},
			"age":    {"age", "years"},
		},
	}
}

func TestIntentsEnumeration(t *testing.T) {
	s := testSchema()
	// 5 aggregates × 2 targets × (1 no-filter + 1 other-column filter) = 20.
	if got := len(s.Intents()); got != 20 {
		t.Fatalf("intents %d, want 20", got)
	}
}

func TestGeneratedUtterancesParseable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	us := GenerateUtterances(rng, testSchema(), 3)
	if len(us) != 60 {
		t.Fatalf("utterances %d", len(us))
	}
	for _, u := range us {
		if u.Text == "" {
			t.Fatal("empty utterance")
		}
		if u.Intent.FilterCol != "" {
			lo, hi := extractBounds(u.Text)
			if lo != u.Lo || hi != u.Hi {
				t.Fatalf("bounds not recoverable from %q: got %g-%g want %g-%g",
					u.Text, lo, hi, u.Lo, u.Hi)
			}
		}
	}
}

func TestParserHighAccuracyOnHeldOut(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := testSchema()
	train := GenerateUtterances(rng, s, 25)
	test := GenerateUtterances(rand.New(rand.NewSource(3)), s, 6)
	p := TrainParser(rand.New(rand.NewSource(4)), s, train, 40)
	acc := Accuracy(p.Parse, test)
	if acc < 0.9 {
		t.Fatalf("parser exact-match accuracy %.3f < 0.9", acc)
	}
}

func TestParserBeatsKeywordBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := testSchema()
	train := GenerateUtterances(rng, s, 25)
	test := GenerateUtterances(rand.New(rand.NewSource(6)), s, 6)
	p := TrainParser(rand.New(rand.NewSource(7)), s, train, 40)
	kb := &KeywordBaseline{Schema: s}
	pAcc := Accuracy(p.Parse, test)
	kAcc := Accuracy(kb.Parse, test)
	t.Logf("exact match: learned %.3f, keyword baseline %.3f", pAcc, kAcc)
	if pAcc <= kAcc {
		t.Fatalf("learned parser (%.3f) should beat keywords (%.3f) on paraphrases", pAcc, kAcc)
	}
}

func TestEndToEndExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := testSchema()
	train := GenerateUtterances(rng, s, 25)
	p := TrainParser(rand.New(rand.NewSource(9)), s, train, 40)

	tab := db.NewTable("emp", "salary", "age")
	tab.Append(100, 30)
	tab.Append(200, 40)
	tab.Append(300, 50)

	q := p.Parse("what is the average salary where age is between 35 and 55")
	if q.Agg != db.AggMean || q.TargetCol != "salary" || q.FilterCol != "age" {
		t.Fatalf("parsed %+v", q)
	}
	if got := must(q.Execute(tab)); got != 250 {
		t.Fatalf("executed answer %g, want 250", got)
	}

	// A paraphrase with synonyms the keyword baseline cannot handle.
	q2 := p.Parse("give the typical pay when years is between 35 and 55")
	if q2.Agg != db.AggMean || q2.TargetCol != "salary" || q2.FilterCol != "age" {
		t.Fatalf("paraphrase parsed as %+v", q2)
	}
	if got := must(q2.Execute(tab)); got != 250 {
		t.Fatalf("paraphrase answer %g, want 250", got)
	}
}

func TestExtractBoundsOrdering(t *testing.T) {
	lo, hi := extractBounds("between 40 and 10")
	if lo != 10 || hi != 40 {
		t.Fatalf("bounds %g, %g", lo, hi)
	}
}

func TestVocabularyDropsNumbers(t *testing.T) {
	us := []Utterance{{Text: "average salary between 10 and 20"}}
	v := BuildVocabulary(us)
	enc := v.Encode("average salary between 999 and 888")
	sum := 0.0
	for _, x := range enc {
		sum += x
	}
	// "average", "salary", "between", "and" = 4 tokens, numbers excluded.
	if sum != 4 {
		t.Fatalf("encoded %g tokens, want 4", sum)
	}
}

func TestExecuteRejectsHallucinatedColumn(t *testing.T) {
	tab := db.NewTable("people", "salary", "age")
	must(0, tab.Append(100, 30))
	q := Query{Agg: db.AggMean, TargetCol: "bonus"}
	_, err := q.Execute(tab)
	if err == nil {
		t.Fatal("query over a nonexistent column executed")
	}
	var ae *db.ArgError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not a *db.ArgError", err)
	}
}
