package serve

import (
	"errors"
	"strings"
	"testing"
)

// TestConfigErrorTyped checks that every Config validation failure comes
// back as a *serve.ConfigError naming the offending field, so callers can
// screen bad configs with errors.As the same way they do for
// distributed.ConfigError.
func TestConfigErrorTyped(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		field  string
	}{
		{"no replicas", func(c *Config) { c.Replicas = nil }, "Replicas"},
		{"efficiency zero", func(c *Config) { c.Replicas[0].Efficiency = 0 }, "Replicas[0].Efficiency"},
		{"efficiency above one", func(c *Config) { c.Replicas[1].Efficiency = 1.5 }, "Replicas[1].Efficiency"},
		{"zero-cost variant", func(c *Config) { c.Replicas[0].Variant.Bytes = 0 }, "Replicas[0].Variant"},
		{"unknown tier", func(c *Config) { c.Replicas[2].Variant.Tier = Tier(9) }, "Replicas[2].Variant.Tier"},
		{"arrival rate", func(c *Config) { c.ArrivalRate = 0 }, "ArrivalRate"},
		{"requests", func(c *Config) { c.Requests = -3 }, "Requests"},
		{"max attempts", func(c *Config) { c.MaxAttempts = 5 }, "MaxAttempts"},
		{"hedge quantile", func(c *Config) { c.HedgeQuantile = 1 }, "HedgeQuantile"},
		{"breaker failure rate", func(c *Config) { c.Breaker.FailureRate = 2 }, "Breaker.FailureRate"},
		{"breaker min samples", func(c *Config) { c.Breaker.Window = 4; c.Breaker.MinSamples = 9 }, "Breaker.MinSamples"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig(1, 0, 1, 10, true)
			cfg.Replicas = append([]Replica(nil), cfg.Replicas...)
			tc.mutate(&cfg)
			_, err := NewServer(cfg)
			if err == nil {
				t.Fatal("bad config accepted")
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error %T %q is not a *ConfigError", err, err)
			}
			if ce.Field != tc.field {
				t.Fatalf("Field = %q, want %q (reason %q)", ce.Field, tc.field, ce.Reason)
			}
			if ce.Reason == "" {
				t.Fatal("empty Reason")
			}
			if !strings.HasPrefix(ce.Error(), "serve: config "+tc.field+" ") {
				t.Fatalf("Error() = %q lacks the serve: config <field> prefix", ce.Error())
			}
		})
	}
}

// TestConfigErrorBreakerCooldown covers the one validation that NewServer
// cannot reach (defaults() backfills CooldownS first): BreakerConfig
// validated directly.
func TestConfigErrorBreakerCooldown(t *testing.T) {
	err := BreakerConfig{CooldownS: -1}.validate()
	var ce *ConfigError
	if !errors.As(err, &ce) || ce.Field != "Breaker.CooldownS" {
		t.Fatalf("got %v, want *ConfigError on Breaker.CooldownS", err)
	}
}
