package serve

// Retry budgets, the SRE-practice defence against retry storms: each
// tenant (client class) may spend retries only out of a token bucket that
// is replenished by its *successes* — by default one retry token per ten
// served requests. Under healthy operation the budget is invisible
// (failures are rare, tokens accumulate to the burst cap); when the fleet
// saturates and successes stop, the bucket drains and retries stop with
// it, so the offered load decays back to the first-attempt arrival rate
// instead of multiplying by MaxAttempts. That cut is what breaks the
// metastable feedback loop X14 measures: without it, retries of failed
// work alone hold the queue past the deadline horizon long after the
// triggering flash crowd has passed.

// RetryBudgetConfig tunes the per-tenant retry token buckets.
type RetryBudgetConfig struct {
	// Disabled turns the budget off: every retry is allowed. This is the
	// budgets-off arm of X14.
	Disabled bool
	// Ratio is the number of retry tokens earned per successfully served
	// request (default 0.1 — retries may be ~10% of successful traffic).
	Ratio float64
	// Burst caps the tokens a tenant can bank (default 32), bounding the
	// retry burst a long quiet streak can finance.
	Burst float64
}

func (c *RetryBudgetConfig) defaults() {
	if c.Ratio <= 0 {
		c.Ratio = 0.1
	}
	if c.Burst <= 0 {
		c.Burst = 32
	}
}

func (c RetryBudgetConfig) validate() error {
	if c.Ratio > 1 {
		return &ConfigError{Field: "Budget.Ratio",
			Reason: "retry/success ratio above 1 defeats the budget's purpose"}
	}
	return nil
}

// retryBudget is the runtime state: one token balance per tenant. It is
// driven entirely by the deterministic event order (earn on serve, spend
// on retry), so replays are bit-identical.
type retryBudget struct {
	cfg    RetryBudgetConfig
	tokens []float64
}

func newRetryBudget(cfg RetryBudgetConfig, tenants int) *retryBudget {
	cfg.defaults()
	b := &retryBudget{cfg: cfg, tokens: make([]float64, tenants)}
	for i := range b.tokens {
		// Start with a full bucket so cold-start failures can retry.
		b.tokens[i] = cfg.Burst
	}
	return b
}

// earn credits one success for the tenant.
func (b *retryBudget) earn(tenant int) {
	t := b.tokens[tenant] + b.cfg.Ratio
	if t > b.cfg.Burst {
		t = b.cfg.Burst
	}
	b.tokens[tenant] = t
}

// allow spends one retry token if the tenant has one, reporting whether
// the retry may proceed. A disabled budget always allows.
func (b *retryBudget) allow(tenant int) bool {
	if b.cfg.Disabled {
		return true
	}
	// The half-ulp slack keeps repeated Ratio additions (0.1 ten times is
	// 0.9999...) from denying a fully earned token.
	if b.tokens[tenant] >= 1-1e-9 {
		b.tokens[tenant]--
		return true
	}
	return false
}
