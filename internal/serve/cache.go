package serve

import "container/list"

// Hot-key result cache. Serving traffic is heavily key-skewed (a few
// prompts, a few feature vectors dominate); a small LRU of recent results
// with a staleness bound absorbs the hottest keys before they reach the
// queue, which both cuts latency for the common case and removes load
// exactly where the Zipf head concentrates it. Entries are inserted when a
// replica serves a key; the cached value is the model prediction the
// fleet precomputed through the batched BatMul path (tierPredictions /
// batchPredict), so a hit returns bit-identically what the replica would
// have computed. The LRU is a map plus an intrusive list — no map
// iteration anywhere — so runs replay deterministically.

// CacheConfig tunes the fleet's hot-key result cache.
type CacheConfig struct {
	// Disabled turns the cache off (every request hits the queue).
	Disabled bool
	// Capacity is the max cached keys (default 256).
	Capacity int
	// TTLS bounds staleness: entries older than this are misses and are
	// evicted on contact (default 50 deadlines).
	TTLS float64
}

func (c *CacheConfig) defaults(deadlineS float64) {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.TTLS <= 0 {
		c.TTLS = 50 * deadlineS
	}
}

type cacheEntry struct {
	key     int
	pred    int
	expires float64
}

// resultCache is a TTL'd LRU keyed by request key.
type resultCache struct {
	capacity int
	ttl      float64
	order    *list.List // front = most recently used
	byKey    map[int]*list.Element
}

func newResultCache(cfg CacheConfig, deadlineS float64) *resultCache {
	cfg.defaults(deadlineS)
	return &resultCache{
		capacity: cfg.Capacity,
		ttl:      cfg.TTLS,
		order:    list.New(),
		byKey:    map[int]*list.Element{},
	}
}

// get returns the cached prediction for key if present and fresh,
// promoting it to most-recently-used. Expired entries are evicted.
func (c *resultCache) get(key int, now float64) (int, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return 0, false
	}
	ent := el.Value.(*cacheEntry)
	if now >= ent.expires {
		c.order.Remove(el)
		delete(c.byKey, key)
		return 0, false
	}
	c.order.MoveToFront(el)
	return ent.pred, true
}

// put inserts (or refreshes) the key's result, evicting the
// least-recently-used entry when full.
func (c *resultCache) put(key, pred int, now float64) {
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.pred = pred
		ent.expires = now + c.ttl
		c.order.MoveToFront(el)
		return
	}
	if c.order.Len() >= c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
	el := c.order.PushFront(&cacheEntry{key: key, pred: pred, expires: now + c.ttl})
	c.byKey[key] = el
}

// len reports live entries (expired ones may linger until touched).
func (c *resultCache) len() int { return c.order.Len() }
