package serve

import (
	"reflect"
	"testing"

	"dlsys/internal/device"
	"dlsys/internal/fault"
)

// testVariant fabricates a variant with the given tier and byte cost; the
// Model is nil, which is fine as long as no eval set is configured.
func testVariant(tier Tier, bytes int64) Variant {
	return Variant{
		Tier: tier, Name: tier.String(), Accuracy: 1 - 0.05*float64(tier),
		FLOPs: 3000, Bytes: bytes,
	}
}

// testFleet is 2x full + one replica per compressed tier on the edge
// device — the fleet shape the X6 experiment uses.
func testFleet() []Replica {
	mk := func(tier Tier, bytes int64) Replica {
		return Replica{Variant: testVariant(tier, bytes), Device: device.EdgeDevice, Efficiency: 0.5}
	}
	return []Replica{
		mk(TierFull, 6000),
		mk(TierFull, 6000),
		mk(TierQuantized, 1600),
		mk(TierDistilled, 500),
		mk(TierPruned, 2000),
	}
}

func testConfig(seed int64, faultRate, load float64, requests int, fallback bool) Config {
	full := Replica{Variant: testVariant(TierFull, 6000), Device: device.EdgeDevice, Efficiency: 0.5}
	serviceFull := full.ServiceS()
	return Config{
		Seed:          seed,
		Faults:        fault.Rate(seed, faultRate),
		Replicas:      testFleet(),
		ArrivalRate:   load * 2 / serviceFull, // 2 full replicas' worth of capacity
		Requests:      requests,
		Fallback:      fallback,
		HedgeQuantile: 0.9,
	}
}

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

func TestFaultFreeLowLoadServesEverything(t *testing.T) {
	res := run(t, testConfig(1, 0, 0.5, 400, true))
	if res.Served != 400 {
		t.Fatalf("served %d/400 (shed %d failed %d)", res.Served, res.Shed, res.Failed)
	}
	if res.Availability != 1 {
		t.Fatalf("availability %g", res.Availability)
	}
	if res.BreakerOpened != 0 {
		t.Fatalf("breakers opened %d times in a fault-free run", res.BreakerOpened)
	}
	// Nearly all traffic stays on the full tier; rare Poisson bursts may
	// degrade a handful of requests rather than queueing past deadline.
	if res.TierCounts[TierFull] < 380 {
		t.Fatalf("too much low-load traffic left the full tier: %v", res.TierCounts)
	}
	if res.P50S <= 0 || res.P99S < res.P50S {
		t.Fatalf("latency stats p50=%g p99=%g", res.P50S, res.P99S)
	}
}

func TestReplayIsDeterministic(t *testing.T) {
	for _, cfg := range []Config{
		testConfig(7, 0.2, 1.3, 500, true),
		testConfig(7, 0.05, 0.6, 500, false),
	} {
		a := run(t, cfg)
		b := run(t, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatal("identical seed and config produced different ledgers")
		}
	}
	// And a different seed must produce a different ledger under faults.
	a := run(t, testConfig(7, 0.2, 1.3, 500, true))
	c := run(t, testConfig(8, 0.2, 1.3, 500, true))
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Fatal("different seeds produced identical ledgers")
	}
}

func TestOverloadShedsWithoutFallback(t *testing.T) {
	noFB := run(t, testConfig(3, 0, 2.5, 600, false))
	if noFB.Shed == 0 {
		t.Fatal("2.5x overload with only the full tier should shed")
	}
	withFB := run(t, testConfig(3, 0, 2.5, 600, true))
	if withFB.Availability <= noFB.Availability {
		t.Fatalf("fallback availability %.3f not above no-fallback %.3f",
			withFB.Availability, noFB.Availability)
	}
	degraded := withFB.TierCounts[TierQuantized] + withFB.TierCounts[TierDistilled] + withFB.TierCounts[TierPruned]
	if degraded == 0 {
		t.Fatal("overloaded fallback run served nothing from compressed tiers")
	}
}

func TestFallbackBeatsNoFallbackUnderFaults(t *testing.T) {
	noFB := run(t, testConfig(5, 0.2, 1.3, 800, false))
	withFB := run(t, testConfig(5, 0.2, 1.3, 800, true))
	if withFB.Availability <= noFB.Availability {
		t.Fatalf("fallback availability %.3f not above no-fallback %.3f under faults",
			withFB.Availability, noFB.Availability)
	}
}

func TestBreakersOpenAndReclose(t *testing.T) {
	res := run(t, testConfig(11, 0.2, 1.0, 1500, true))
	if res.BreakerOpened == 0 {
		t.Fatal("no breaker opened at fault rate 0.2")
	}
	if res.BreakerReclosed == 0 {
		t.Fatal("no breaker re-closed — recovery path never exercised")
	}
}

func TestHedgingFiresAndWins(t *testing.T) {
	// Stragglers (8x) with no other faults, at moderate load so tail
	// latency is straggler- rather than queue-dominated: hedges should
	// fire on straggled attempts and some should win.
	cfg := testConfig(13, 0, 0.5, 1200, true)
	cfg.Faults = fault.Config{Seed: 13, StragglerProb: 0.15, StragglerFactor: 8}
	// Hedge below the straggler fraction: at p90 the quantile IS the
	// straggled latency and nothing strictly exceeds it.
	cfg.HedgeQuantile = 0.8
	res := run(t, cfg)
	if res.HedgesLaunched == 0 {
		t.Fatal("no hedges launched despite 8x stragglers")
	}
	if res.HedgeWins == 0 {
		t.Fatal("no hedge ever won")
	}
	if res.HedgeWins > res.HedgesLaunched {
		t.Fatalf("hedge wins %d exceed launches %d", res.HedgeWins, res.HedgesLaunched)
	}

	// With hedging disabled the same scenario must be strictly slower at
	// the tail.
	cfg2 := cfg
	cfg2.HedgeQuantile = 0
	res2 := run(t, cfg2)
	if res2.HedgesLaunched != 0 {
		t.Fatal("hedging ran while disabled")
	}
	if res.P99S >= res2.P99S {
		t.Fatalf("hedged p99 %.4f not below unhedged p99 %.4f", res.P99S, res2.P99S)
	}
}

func TestDeadlineAwareShedding(t *testing.T) {
	// One slow replica, tiny queue, high load: requests whose projected
	// start blows the deadline must be shed, not queued to die.
	cfg := testConfig(17, 0, 4.0, 400, false)
	cfg.QueueCap = 2
	res := run(t, cfg)
	if res.Shed == 0 {
		t.Fatal("nothing shed at 4x overload with QueueCap=2")
	}
	// Every served request met its deadline by construction.
	for _, r := range res.Records {
		if r.Outcome == Served && r.LatencyS > cfg.DeadlineS+8*testFleet()[0].ServiceS() {
			t.Fatalf("request %d served after its deadline window", r.ID)
		}
	}
	// Shed requests are rejected instantly (admission control, not
	// timeout): their finish time equals their arrival.
	for _, r := range res.Records {
		if r.Outcome == Shed && r.FinishS != r.ArrivalS {
			t.Fatalf("request %d shed late: arrival %.4f finish %.4f", r.ID, r.ArrivalS, r.FinishS)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	good := testConfig(1, 0, 1, 10, true)
	bad := []func(*Config){
		func(c *Config) { c.Replicas = nil },
		func(c *Config) { c.Replicas[0].Efficiency = 0 },
		func(c *Config) { c.Replicas[0].Efficiency = 1.5 },
		func(c *Config) { c.Replicas[0].Variant.Bytes = 0 },
		func(c *Config) { c.Replicas[0].Variant.Tier = Tier(9) },
		func(c *Config) { c.ArrivalRate = 0 },
		func(c *Config) { c.Requests = 0 },
		func(c *Config) { c.MaxAttempts = 5 },
		func(c *Config) { c.HedgeQuantile = 1 },
		func(c *Config) { c.Faults.CrashProb = 1.5 },
		func(c *Config) { c.Breaker.FailureRate = 2 },
	}
	for i, mutate := range bad {
		cfg := good
		cfg.Replicas = append([]Replica(nil), good.Replicas...)
		mutate(&cfg)
		if _, err := NewServer(cfg); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
	if _, err := NewServer(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestBuildVariantsLadder(t *testing.T) {
	vs, eval, err := BuildVariants(VariantsConfig{Seed: 42, Examples: 800, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("got %d variants, want 4", len(vs))
	}
	for i, v := range vs {
		if v.Tier != Tier(i) {
			t.Fatalf("variant %d has tier %v", i, v.Tier)
		}
		if v.Model == nil || v.Bytes <= 0 || v.FLOPs <= 0 {
			t.Fatalf("variant %v incomplete: %+v", v.Tier, v)
		}
		if v.Accuracy < 0.5 {
			t.Fatalf("variant %v accuracy %.3f suspiciously low", v.Tier, v.Accuracy)
		}
	}
	// Every compressed tier must actually stream fewer bytes.
	for _, v := range vs[1:] {
		if v.Bytes >= vs[0].Bytes {
			t.Fatalf("tier %v bytes %d not below full %d", v.Tier, v.Bytes, vs[0].Bytes)
		}
	}
	if eval == nil || eval.N() == 0 {
		t.Fatal("no eval split returned")
	}
	// Bad ladder configs surface as errors.
	if _, _, err := BuildVariants(VariantsConfig{Seed: 1, PruneSparsity: 1.5}); err == nil {
		t.Fatal("PruneSparsity 1.5 accepted")
	}
}

func TestServedMixAccuracyMeasured(t *testing.T) {
	vs, eval, err := BuildVariants(VariantsConfig{Seed: 42, Examples: 800, Epochs: 15})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(v Variant) Replica {
		return Replica{Variant: v, Device: device.EdgeDevice, Efficiency: 0.5}
	}
	fleet := []Replica{mk(vs[0]), mk(vs[0]), mk(vs[1]), mk(vs[2]), mk(vs[3])}
	serviceFull := fleet[0].ServiceS()
	cfg := Config{
		Seed: 3, Replicas: fleet, Requests: 500, Fallback: true,
		ArrivalRate: 1.3 * 2 / serviceFull,
		Faults:      fault.Rate(3, 0.2),
		EvalX:       eval.X, EvalLabels: eval.Labels,
	}
	res := run(t, cfg)
	if res.MixAccuracy <= 0.5 || res.MixAccuracy > 1 {
		t.Fatalf("served-mix accuracy %.3f implausible", res.MixAccuracy)
	}
	// The mix accuracy cannot exceed the best variant's accuracy by more
	// than sampling noise on this fixed eval set.
	if res.MixAccuracy > vs[0].Accuracy+0.05 {
		t.Fatalf("mix accuracy %.3f above full-model accuracy %.3f", res.MixAccuracy, vs[0].Accuracy)
	}
}
