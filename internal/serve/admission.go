package serve

import (
	"fmt"
	"math"
)

// Admission control for the event-driven fleet. Two modes:
//
//   - Legacy (Adaptive == false): a fixed global queue cap, the gate the
//     original Server used per replica. Under sustained overload the queue
//     sits at the cap; if the cap is deeper than the deadline horizon
//     (cap/drain > deadline), every admitted request is doomed to miss its
//     deadline — the fleet burns full capacity producing nothing, which is
//     the wasted-work half of the metastable failure X14 measures.
//
//   - Adaptive (Adaptive == true): a two-rung ladder. Rung one rejects
//     deadline-infeasible work up front — if the estimated queue delay plus
//     one service time already overruns the request's deadline, admitting
//     it could only waste capacity, so it is shed at the door for free.
//     Rung two is a CoDel-style controller on queue sojourn: it tolerates
//     bursts, but once the delay measured at *dequeue* has stayed above
//     target for a full interval it enters a dropping state and sheds
//     arrivals at an increasing rate (interval/sqrt(count)) until the
//     standing queue dissolves. On top of both rungs, per-tenant
//     weighted-fair slot caps bound how much of the queue a single tenant
//     may occupy while the fleet is overloaded, so one tenant's flash
//     crowd or retry storm cannot starve the rest; when the fleet is
//     underloaded the caps are not enforced and the queue is
//     work-conserving.

// AdmissionConfig tunes the fleet's admission gate.
type AdmissionConfig struct {
	// Adaptive selects the delay-aware ladder; false selects the legacy
	// fixed queue cap.
	Adaptive bool
	// QueueCap is the legacy global queue cap (default 10000 entries).
	// Ignored in adaptive mode.
	QueueCap int
	// TargetS is the CoDel sojourn target (default DeadlineS/4).
	TargetS float64
	// IntervalS is the CoDel control interval (default DeadlineS).
	IntervalS float64
}

func (c *AdmissionConfig) defaults(deadlineS float64) {
	if c.QueueCap <= 0 {
		c.QueueCap = 10000
	}
	if c.TargetS <= 0 {
		c.TargetS = deadlineS / 4
	}
	if c.IntervalS <= 0 {
		c.IntervalS = deadlineS
	}
}

func (c AdmissionConfig) validate() error {
	if c.TargetS > 0 && c.IntervalS > 0 && c.TargetS >= c.IntervalS {
		return &ConfigError{Field: "Admission.TargetS",
			Reason: fmt.Sprintf("CoDel target %g must be below the interval %g", c.TargetS, c.IntervalS)}
	}
	return nil
}

// codel is the queue-delay controller: sojourn observations arrive from
// dequeues, shed verdicts are consulted at admission. The control law is
// CoDel's — first_above_time arms after one interval above target,
// dropping sheds at interval/sqrt(count) — applied at the front door
// rather than the queue head, which suits admission control (the work is
// refused before it costs anything).
type codel struct {
	target, interval float64
	firstAbove       float64 // 0 = sojourn currently below target
	dropping         bool
	dropNext         float64
	count            int
}

// onDequeue feeds one sojourn measurement taken when a request left the
// queue for a replica.
func (c *codel) onDequeue(sojourn, now float64) {
	if sojourn < c.target {
		c.firstAbove = 0
		c.dropping = false
		c.count = 0
		return
	}
	if c.firstAbove == 0 {
		c.firstAbove = now + c.interval
	} else if now >= c.firstAbove && !c.dropping {
		c.dropping = true
		c.count = 0
		c.dropNext = now
	}
}

// shouldShed reports whether the arrival at now should be refused under
// the current dropping state.
func (c *codel) shouldShed(now float64) bool {
	if !c.dropping {
		return false
	}
	if now >= c.dropNext {
		c.count++
		c.dropNext = now + c.interval/math.Sqrt(float64(c.count))
		return true
	}
	return false
}

// admitter is the runtime admission state shared by both modes.
type admitter struct {
	cfg       AdmissionConfig
	deadlineS float64
	serviceS  float64 // one fresh request's service time

	codel        codel
	weights      []float64 // tenant entitlements, sum 1
	tenantQueued []int
	tenantCap    []int // fair queue-slot cap per tenant (adaptive mode)
	fairDepth    int   // queue length at which fair caps engage
}

func newAdmitter(cfg AdmissionConfig, deadlineS, serviceS, drainRate float64, weights []float64) *admitter {
	cfg.defaults(deadlineS)
	a := &admitter{
		cfg:       cfg,
		deadlineS: deadlineS,
		serviceS:  serviceS,
		codel:     codel{target: cfg.TargetS, interval: cfg.IntervalS},
		weights:   weights,
	}
	// The deadline horizon in queue slots: a queue longer than this makes
	// every admitted request infeasible. Fair-share caps split that depth
	// by entitlement and engage at half of it.
	horizon := (deadlineS - serviceS) * drainRate
	if horizon < 1 {
		horizon = 1
	}
	a.fairDepth = int(horizon / 2)
	a.tenantQueued = make([]int, len(weights))
	a.tenantCap = make([]int, len(weights))
	for i, w := range weights {
		slots := int(w * horizon)
		if slots < 2 {
			slots = 2
		}
		a.tenantCap[i] = slots
	}
	return a
}

// admit decides whether the request may join the queue. estDelay is the
// fleet's current queue-delay estimate, queueLen the global queue length.
func (a *admitter) admit(tenant int, now, estDelay float64, queueLen int) bool {
	if !a.cfg.Adaptive {
		return queueLen < a.cfg.QueueCap
	}
	// Rung one: deadline infeasibility. Admitting work that cannot finish
	// in time only converts capacity into misses.
	if estDelay+a.serviceS > a.deadlineS {
		return false
	}
	// Fairness: under overload a tenant may not hold more than its
	// weighted share of the deadline horizon.
	if queueLen > a.fairDepth && a.tenantQueued[tenant] >= a.tenantCap[tenant] {
		return false
	}
	// Rung two: CoDel dropping state.
	if a.codel.shouldShed(now) {
		return false
	}
	return true
}

// enqueued/dequeued keep the per-tenant occupancy in sync with the queue.
func (a *admitter) enqueued(tenant int) { a.tenantQueued[tenant]++ }
func (a *admitter) dequeued(tenant int, sojourn, now float64) {
	a.tenantQueued[tenant]--
	a.codel.onDequeue(sojourn, now)
}
