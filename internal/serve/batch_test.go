package serve

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
	"dlsys/internal/quant"
)

// Batched tier predictions must be exactly the predictions the per-tier
// Predict calls produce — the serving ledger (and its fingerprint) depends
// on them.
func TestBatchPredictMatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ds := data.GaussianMixture(rng, 400, 8, 4, 2.0)
	cfg := nn.MLPConfig{In: 8, Hidden: []int{48, 48}, Out: 4}
	nets := []*nn.Network{
		nn.NewMLP(rand.New(rand.NewSource(1)), cfg),
		nn.NewMLP(rand.New(rand.NewSource(2)), cfg),
		nn.NewMLP(rand.New(rand.NewSource(3)), cfg),
	}
	batched := batchPredict(nets, ds.X)
	for i, net := range nets {
		want := net.Predict(ds.X)
		for r := range want {
			if batched[i][r] != want[r] {
				t.Fatalf("net %d row %d: batched %d != individual %d", i, r, batched[i][r], want[r])
			}
		}
	}
}

func TestDenseArchSignatures(t *testing.T) {
	cfg := nn.MLPConfig{In: 8, Hidden: []int{48, 48}, Out: 4}
	a := nn.NewMLP(rand.New(rand.NewSource(1)), cfg)
	b := nn.NewMLP(rand.New(rand.NewSource(9)), cfg)
	if sa, sb := denseArch(a), denseArch(b); sa == "" || sa != sb {
		t.Fatalf("same-architecture nets disagree: %q vs %q", sa, sb)
	}
	narrow := nn.NewMLP(rand.New(rand.NewSource(1)), nn.MLPConfig{In: 8, Hidden: []int{8}, Out: 4})
	if denseArch(a) == denseArch(narrow) {
		t.Fatal("different architectures share a signature")
	}
	withDropout := nn.NewMLP(rand.New(rand.NewSource(1)), nn.MLPConfig{In: 8, Hidden: []int{8}, Out: 4, Dropout: 0.5})
	if denseArch(withDropout) != "" {
		t.Fatal("non-Dense/ReLU network should not be batchable")
	}
}

// tierPredictions must reproduce per-tier Predict for a mixed fleet: full
// and pruned share an architecture (batched), int8 and distilled do not.
func TestTierPredictionsMatchPerTier(t *testing.T) {
	variants, eval, err := BuildVariants(VariantsConfig{Seed: 5, Examples: 600, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	var reps [numTiers]Predictor
	for _, v := range variants {
		if reps[v.Tier] == nil {
			reps[v.Tier] = v.Model
		}
	}
	got := tierPredictions(reps, eval.X)
	for tier := TierFull; tier < numTiers; tier++ {
		want := reps[tier].Predict(eval.X)
		for r := range want {
			if got[tier][r] != want[r] {
				t.Fatalf("tier %v row %d: %d != %d", tier, r, got[tier][r], want[r])
			}
		}
	}
}

// The Float32 opt-in swaps the full tier to the f32 inference path with
// half the streamed bytes; off, the ladder stays the historical one.
func TestBuildVariantsFloat32OptIn(t *testing.T) {
	f64v, _, err := BuildVariants(VariantsConfig{Seed: 6, Examples: 600, Epochs: 6})
	if err != nil {
		t.Fatal(err)
	}
	f32v, _, err := BuildVariants(VariantsConfig{Seed: 6, Examples: 600, Epochs: 6, Float32: true})
	if err != nil {
		t.Fatal(err)
	}
	if f64v[0].Name != "full-fp32" {
		t.Fatalf("default full tier: %s", f64v[0].Name)
	}
	if f32v[0].Name != "full-f32" {
		t.Fatalf("opt-in full tier: %s", f32v[0].Name)
	}
	if _, ok := f32v[0].Model.(*quant.F32MLP); !ok {
		t.Fatalf("opt-in full tier model is %T", f32v[0].Model)
	}
	// The full tier was always priced as fp32 streaming; the opt-in makes
	// the executed path match the priced one, so the cost figure is equal.
	if f32v[0].Bytes != f64v[0].Bytes {
		t.Fatalf("f32 bytes %d should equal the fp32-priced %d", f32v[0].Bytes, f64v[0].Bytes)
	}
	if f32v[0].Accuracy < f64v[0].Accuracy-0.02 {
		t.Fatalf("f32 accuracy %g fell more than noise below %g", f32v[0].Accuracy, f64v[0].Accuracy)
	}
}
