package serve

import "testing"

func TestCodelStateMachine(t *testing.T) {
	c := codel{target: 0.005, interval: 0.1}
	// Below-target sojourns never arm the controller.
	for i := 0; i < 100; i++ {
		c.onDequeue(0.004, float64(i)*0.01)
		if c.shouldShed(float64(i) * 0.01) {
			t.Fatal("shed with sojourn below target")
		}
	}
	// One above-target sample arms first_above but does not shed yet.
	c.onDequeue(0.01, 1.0)
	if c.dropping || c.shouldShed(1.0) {
		t.Fatal("entered dropping before a full interval above target")
	}
	// Staying above target for a full interval enters dropping.
	c.onDequeue(0.01, 1.11)
	if !c.dropping {
		t.Fatal("sustained high sojourn did not enter dropping")
	}
	// The first shed happens immediately; the next only after
	// interval/sqrt(2).
	if !c.shouldShed(1.11) {
		t.Fatal("dropping state refused the first shed")
	}
	if c.shouldShed(1.12) {
		t.Fatal("second shed came before the control-law gap")
	}
	if !c.shouldShed(1.25) {
		t.Fatal("control law never released the second shed")
	}
	// One below-target sojourn resets everything.
	c.onDequeue(0.001, 1.3)
	if c.dropping || c.shouldShed(1.3) {
		t.Fatal("below-target sojourn did not exit dropping")
	}
}

func TestAdmitterLegacyQueueCap(t *testing.T) {
	a := newAdmitter(AdmissionConfig{QueueCap: 5}, 0.02, 0.001, 25000, []float64{1})
	for q := 0; q < 5; q++ {
		if !a.admit(0, 0, 10 /* even an absurd delay estimate */, q) {
			t.Fatalf("legacy gate rejected with queue %d below cap", q)
		}
	}
	if a.admit(0, 0, 0, 5) {
		t.Fatal("legacy gate admitted past the cap")
	}
}

func TestAdmitterDeadlineInfeasibility(t *testing.T) {
	a := newAdmitter(AdmissionConfig{Adaptive: true}, 0.02, 0.001, 25000, []float64{1})
	if !a.admit(0, 0, 0.018, 0) {
		t.Fatal("feasible request rejected")
	}
	if a.admit(0, 0, 0.0195, 0) {
		t.Fatal("infeasible request admitted (est delay + service > deadline)")
	}
}

func TestAdmitterFairShareCaps(t *testing.T) {
	// Two tenants, 75/25 entitlements, drain 25k/s, deadline 20ms:
	// horizon = (0.02-0.001)*25000 = 475 slots, fairDepth 237.
	a := newAdmitter(AdmissionConfig{Adaptive: true}, 0.02, 0.001, 25000, []float64{0.75, 0.25})
	if a.tenantCap[0] <= a.tenantCap[1] {
		t.Fatalf("caps %v do not follow entitlements", a.tenantCap)
	}
	// Underloaded: tenant 1 may exceed its cap (work-conserving).
	for i := 0; i < a.tenantCap[1]+5; i++ {
		a.enqueued(1)
	}
	if !a.admit(1, 0, 0, a.fairDepth-1) {
		t.Fatal("fair cap enforced while the fleet is underloaded")
	}
	// Overloaded: the cap binds for tenant 1 but tenant 0 still enters.
	if a.admit(1, 0, 0, a.fairDepth+1) {
		t.Fatal("over-cap tenant admitted under overload")
	}
	if !a.admit(0, 0, 0, a.fairDepth+1) {
		t.Fatal("under-cap tenant rejected under overload")
	}
}

func TestRetryBudgetTokens(t *testing.T) {
	b := newRetryBudget(RetryBudgetConfig{Ratio: 0.1, Burst: 2}, 1)
	// Starts with a full (burst) bucket: two retries pass, the third is
	// denied.
	if !b.allow(0) || !b.allow(0) {
		t.Fatal("initial burst tokens missing")
	}
	if b.allow(0) {
		t.Fatal("empty bucket allowed a retry")
	}
	// Ten successes earn one token.
	for i := 0; i < 10; i++ {
		b.earn(0)
	}
	if !b.allow(0) {
		t.Fatal("earned token not spendable")
	}
	if b.allow(0) {
		t.Fatal("token spent twice")
	}
	// A disabled budget always allows.
	d := newRetryBudget(RetryBudgetConfig{Disabled: true}, 1)
	for i := 0; i < 100; i++ {
		if !d.allow(0) {
			t.Fatal("disabled budget denied a retry")
		}
	}
}

func TestResultCacheLRUAndTTL(t *testing.T) {
	c := newResultCache(CacheConfig{Capacity: 2, TTLS: 1}, 0.02)
	c.put(1, 11, 0)
	c.put(2, 22, 0)
	if v, ok := c.get(1, 0.5); !ok || v != 11 {
		t.Fatalf("get(1) = %d,%v", v, ok)
	}
	// Key 1 is now MRU; inserting key 3 evicts key 2.
	c.put(3, 33, 0.5)
	if _, ok := c.get(2, 0.5); ok {
		t.Fatal("LRU key survived eviction")
	}
	if v, ok := c.get(1, 0.5); !ok || v != 11 {
		t.Fatalf("MRU key evicted: %d,%v", v, ok)
	}
	// TTL: key 1 (inserted at 0) expires at 1.
	if _, ok := c.get(1, 1.01); ok {
		t.Fatal("expired entry served")
	}
	if c.len() != 1 { // key 3 remains
		t.Fatalf("cache len %d after expiry eviction", c.len())
	}
}
