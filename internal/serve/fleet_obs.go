package serve

import (
	"fmt"

	"dlsys/internal/obs"
)

// fleetObs holds the pre-resolved instruments for one fleet run. Counter
// names mirror the FleetResult tallies one-to-one — X14 asserts they
// reconcile exactly against the request ledger, the serving-side analogue
// of the X8 contract. The fleet always instruments through a non-nil
// handle (a private one when the caller passes none) because the
// autoscaler is *driven* by these gauges: metrics here are part of the
// control loop, not just telemetry.
type fleetObs struct {
	h *obs.Handle

	arrived, admitted, shed  *obs.Counter
	served, failed           *obs.Counter
	retries, retriesDenied   *obs.Counter
	cacheHits, cacheMisses   *obs.Counter
	scaleUps, scaleDowns     *obs.Counter
	tenantArrived            []*obs.Counter
	tenantServed             []*obs.Counter
	tenantShed, tenantFailed []*obs.Counter

	replicas, queueLen, queueDelayEst *obs.Gauge
}

func newFleetObs(h *obs.Handle, tenants int) *fleetObs {
	o := &fleetObs{
		h:             h,
		arrived:       h.Counter("fleet.arrived"),
		admitted:      h.Counter("fleet.admitted"),
		shed:          h.Counter("fleet.shed"),
		served:        h.Counter("fleet.served"),
		failed:        h.Counter("fleet.failed"),
		retries:       h.Counter("fleet.retries"),
		retriesDenied: h.Counter("fleet.retries_denied"),
		cacheHits:     h.Counter("fleet.cache_hits"),
		cacheMisses:   h.Counter("fleet.cache_misses"),
		scaleUps:      h.Counter("fleet.scale_up_replicas"),
		scaleDowns:    h.Counter("fleet.scale_down_replicas"),
		replicas:      h.Gauge("fleet.replicas"),
		queueLen:      h.Gauge("fleet.queue_len"),
		queueDelayEst: h.Gauge("fleet.queue_delay_est"),
	}
	for t := 0; t < tenants; t++ {
		o.tenantArrived = append(o.tenantArrived, h.Counter(TenantCounterName(t, "arrived")))
		o.tenantServed = append(o.tenantServed, h.Counter(TenantCounterName(t, "served")))
		o.tenantShed = append(o.tenantShed, h.Counter(TenantCounterName(t, "shed")))
		o.tenantFailed = append(o.tenantFailed, h.Counter(TenantCounterName(t, "failed")))
	}
	return o
}

// TenantCounterName is the fleet's per-tenant counter naming scheme
// (fleet.tenantNN.suffix), exported so the X10/X14 reconcilers can walk
// the same names the fleet wrote.
func TenantCounterName(tenant int, suffix string) string {
	return fmt.Sprintf("fleet.tenant%02d.%s", tenant, suffix)
}
