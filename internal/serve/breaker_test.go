package serve

import "testing"

func newTestBreaker() *Breaker {
	return NewBreaker(BreakerConfig{
		Window: 8, MinSamples: 4, FailureRate: 0.5, CooldownS: 10, HalfOpenProbes: 2,
	})
}

func TestBreakerStaysClosedUnderSuccess(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 50; i++ {
		if !b.Allow(float64(i)) {
			t.Fatal("closed breaker rejected traffic")
		}
		b.Record(float64(i), true)
	}
	if b.State() != Closed || b.Opened() != 0 {
		t.Fatalf("state %v opened %d", b.State(), b.Opened())
	}
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	b := newTestBreaker()
	// Two successes then failures: trips once the windowed rate hits 1/2
	// with at least MinSamples outcomes.
	b.Record(0, true)
	b.Record(1, true)
	b.Record(2, false)
	if b.State() != Closed {
		t.Fatal("tripped below MinSamples")
	}
	b.Record(3, false)
	if b.State() != Open {
		t.Fatalf("state %v after 2/4 failures", b.State())
	}
	if b.Opened() != 1 {
		t.Fatalf("opened %d", b.Opened())
	}
	if b.Allow(4) {
		t.Fatal("open breaker admitted traffic before cooldown")
	}
}

func TestBreakerMinSamplesGuard(t *testing.T) {
	b := newTestBreaker()
	// Failures below MinSamples must not trip the breaker, even at a
	// 100% windowed failure rate.
	b.Record(0, false)
	b.Record(1, false)
	b.Record(2, false)
	if b.State() != Closed {
		t.Fatalf("state %v below MinSamples", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 4; i++ {
		b.Record(float64(i), false)
	}
	if b.State() != Open {
		t.Fatal("not open")
	}
	// Cooldown is 10s from the trip at t=3.
	if b.Allow(12.9) {
		t.Fatal("admitted before cooldown elapsed")
	}
	if !b.Allow(13.1) {
		t.Fatal("probe rejected after cooldown")
	}
	if b.State() != HalfOpen {
		t.Fatalf("state %v", b.State())
	}
	b.Record(13.5, true)
	if b.State() != HalfOpen {
		t.Fatal("closed after one probe, want two")
	}
	b.Record(14.0, true)
	if b.State() != Closed {
		t.Fatalf("state %v after 2 probe successes", b.State())
	}
	if b.Reclosed() != 1 {
		t.Fatalf("reclosed %d", b.Reclosed())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 4; i++ {
		b.Record(float64(i), false)
	}
	if !b.Allow(20) {
		t.Fatal("probe rejected")
	}
	b.Record(20.5, false)
	if b.State() != Open {
		t.Fatalf("state %v after failed probe", b.State())
	}
	if b.Opened() != 2 {
		t.Fatalf("opened %d", b.Opened())
	}
	// The new cooldown restarts from the re-trip.
	if b.Allow(25) {
		t.Fatal("admitted before the fresh cooldown elapsed")
	}
	if !b.Allow(31) {
		t.Fatal("probe rejected after fresh cooldown")
	}
}

func TestBreakerWindowResetsAfterRecovery(t *testing.T) {
	b := newTestBreaker()
	for i := 0; i < 4; i++ {
		b.Record(float64(i), false)
	}
	b.Allow(20)
	b.Record(20, true)
	b.Record(21, true)
	if b.State() != Closed {
		t.Fatal("not reclosed")
	}
	// The pre-trip failures must not linger: two fresh failures alone
	// (2/2 rate but below MinSamples) must not trip.
	b.Record(22, false)
	b.Record(23, false)
	b.Record(24, true)
	if b.State() != Closed {
		t.Fatal("stale window outcomes survived recovery")
	}
}
