package serve

import (
	"fmt"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Batched tier predictions. NewServer scores every tier's representative
// model over the same eval matrix; when several tiers host pure Dense+ReLU
// networks of identical architecture (the full and pruned tiers share
// [in, hidden..., out] by construction), their forwards are one rank-3
// BatMul per layer instead of one MatMul per tier. The batched kernel is
// bit-identical to MatMul on each slice (the gemm.go contract), the bias
// add and ReLU below mirror nn.Dense/nn.ReLU element for element, and
// masked (pruned) weights are already zeroed in W.Value, so the batched
// predictions match per-tier Predict calls exactly.

// denseArch returns an architecture signature for a pure Dense(+ReLU)
// network, or "" when the network contains any other layer type (dropout,
// batchnorm, conv — none of them batchable here).
func denseArch(net *nn.Network) string {
	sig := ""
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Dense:
			sig += fmt.Sprintf("D%dx%d;", v.In(), v.Out())
		case *nn.ReLU:
			sig += "R;"
		default:
			return ""
		}
	}
	return sig
}

// batchPredict runs x through nets — which must share a denseArch
// signature — with one batched GEMM per layer, returning per-net argmax
// predictions. Slice i of the result equals nets[i].Predict(x) exactly.
func batchPredict(nets []*nn.Network, x *tensor.Tensor) [][]int {
	bt := len(nets)
	m, width := x.Dim(0), x.Dim(1)
	cur := tensor.New(bt, m, width)
	for i := 0; i < bt; i++ {
		copy(cur.Data[i*m*width:(i+1)*m*width], x.Data)
	}
	for li, l := range nets[0].Layers {
		switch v := l.(type) {
		case *nn.Dense:
			in, out := v.In(), v.Out()
			w := tensor.New(bt, in, out)
			for i, net := range nets {
				copy(w.Data[i*in*out:(i+1)*in*out], net.Layers[li].(*nn.Dense).W.Value.Data)
			}
			prod := tensor.BatMul(cur, w)
			// Bias add, mirroring tensor.AddRowVector per slice.
			for i, net := range nets {
				b := net.Layers[li].(*nn.Dense).B.Value.Data
				slice := prod.Data[i*m*out : (i+1)*m*out]
				for r := 0; r < m; r++ {
					row := slice[r*out : (r+1)*out]
					for j := range row {
						row[j] += b[j]
					}
				}
			}
			cur = prod
			width = out
		case *nn.ReLU:
			// Mirror nn.ReLU.Forward: strictly positive passes, else zero.
			for i, val := range cur.Data {
				if !(val > 0) {
					cur.Data[i] = 0
				}
			}
		}
	}
	preds := make([][]int, bt)
	for i := 0; i < bt; i++ {
		preds[i] = make([]int, m)
		slice := &stackSlice{data: cur.Data[i*m*width : (i+1)*m*width], n: width}
		for r := 0; r < m; r++ {
			preds[i][r] = slice.argMaxRow(r)
		}
	}
	return preds
}

// stackSlice is a minimal rank-2 view over a batch slice for argmax,
// matching Tensor.ArgMaxRow's tie-breaking (lowest index wins).
type stackSlice struct {
	data []float64
	n    int
}

func (s *stackSlice) argMaxRow(r int) int {
	row := s.data[r*s.n : (r+1)*s.n]
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// tierPredictions scores one representative model per tier over the eval
// matrix, batching same-architecture Dense+ReLU networks through the rank-3
// kernel and falling back to individual Predict calls for everything else
// (int8 and f32 paths, mixed architectures).
func tierPredictions(reps [numTiers]Predictor, evalX *tensor.Tensor) (preds [numTiers][]int) {
	type member struct {
		tier Tier
		net  *nn.Network
	}
	groups := map[string][]member{}
	for t := TierFull; t < numTiers; t++ {
		if reps[t] == nil {
			continue
		}
		if net, ok := reps[t].(*nn.Network); ok {
			if sig := denseArch(net); sig != "" {
				groups[sig] = append(groups[sig], member{t, net})
				continue
			}
		}
		preds[t] = reps[t].Predict(evalX)
	}
	for _, g := range groups {
		if len(g) == 1 {
			preds[g[0].tier] = g[0].net.Predict(evalX)
			continue
		}
		nets := make([]*nn.Network, len(g))
		for i, mb := range g {
			nets[i] = mb.net
		}
		batched := batchPredict(nets, evalX)
		for i, mb := range g {
			preds[mb.tier] = batched[i]
		}
	}
	return preds
}
