package serve

import (
	"fmt"
	"math/rand"

	"dlsys/internal/data"
	"dlsys/internal/distill"
	"dlsys/internal/nn"
	"dlsys/internal/prune"
	"dlsys/internal/quant"
	"dlsys/internal/tensor"
)

// Tier orders model variants from most to least faithful. Lower tiers are
// preferred; the server degrades to higher tiers when the preferred ones
// are saturated or broken.
type Tier int

// Degradation ladder, best first.
const (
	// TierFull is the uncompressed float model.
	TierFull Tier = iota
	// TierQuantized is the int8 integer-inference variant.
	TierQuantized
	// TierDistilled is a small student distilled from the full model.
	TierDistilled
	// TierPruned is the sparsified variant.
	TierPruned

	numTiers
)

// String names the tier for ledgers and tables.
func (t Tier) String() string {
	switch t {
	case TierFull:
		return "full"
	case TierQuantized:
		return "quantized"
	case TierDistilled:
		return "distilled"
	case TierPruned:
		return "pruned"
	}
	return "unknown"
}

// Predictor is the inference interface a replica hosts: argmax classes
// for a batch of rows. Both *nn.Network and *quant.IntMLP satisfy it.
type Predictor interface {
	Predict(x *tensor.Tensor) []int
}

// Variant is one deployable model: the predictor plus the cost figures
// the serving simulator charges per request (weights streamed, FLOPs) and
// its measured accuracy on the eval split.
type Variant struct {
	Tier     Tier
	Name     string
	Model    Predictor
	Accuracy float64 // on the held-out eval split
	FLOPs    int64   // per single-row inference
	Bytes    int64   // weight bytes streamed per request
}

// VariantsConfig controls BuildVariants' training run.
type VariantsConfig struct {
	Seed     int64
	Examples int // dataset size (default 2000)
	Features int // default 8
	Classes  int // default 4
	Sep      float64
	Hidden   []int // full-model hidden widths (default {48, 48})

	Epochs    int // default 30
	BatchSize int // default 32
	LR        float64

	DistillWidth  int     // student hidden width (default 8)
	PruneSparsity float64 // default 0.7

	// Float32 swaps the full tier's served model to the float32 inference
	// path (tensor engine f32 tier). The full tier has always been PRICED
	// as fp32 streaming (ParamBytes(32)); this makes the executed path
	// match the priced one at half the in-memory footprint. Off by
	// default — the float64 ladder is the historical, bit-reproducible
	// configuration.
	Float32 bool
}

func (c *VariantsConfig) defaults() {
	if c.Examples <= 0 {
		c.Examples = 2000
	}
	if c.Features <= 0 {
		c.Features = 8
	}
	if c.Classes <= 0 {
		c.Classes = 4
	}
	if c.Sep == 0 {
		c.Sep = 2.5
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{48, 48}
	}
	if c.Epochs <= 0 {
		c.Epochs = 30
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.DistillWidth <= 0 {
		c.DistillWidth = 8
	}
	if c.PruneSparsity == 0 {
		c.PruneSparsity = 0.7
	}
}

// BuildVariants trains the full model and derives the degradation ladder:
// int8-quantized, distilled, and pruned variants, each with real measured
// accuracy and honest cost figures. It also returns the eval split so the
// server can score the accuracy of the responses it actually serves.
func BuildVariants(cfg VariantsConfig) ([]Variant, *data.Dataset, error) {
	cfg.defaults()
	if cfg.PruneSparsity < 0 || cfg.PruneSparsity >= 1 {
		return nil, nil, fmt.Errorf("serve: PruneSparsity %g out of [0, 1)", cfg.PruneSparsity)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := data.GaussianMixture(rng, cfg.Examples, cfg.Features, cfg.Classes, cfg.Sep)
	train, eval := ds.Split(rng, 0.8)
	y := nn.OneHot(train.Labels, cfg.Classes)

	mlpCfg := nn.MLPConfig{In: cfg.Features, Hidden: cfg.Hidden, Out: cfg.Classes}
	full := nn.NewMLP(rng, mlpCfg)
	tr := nn.NewTrainer(full, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	tr.Fit(train.X, y, nn.TrainConfig{Epochs: cfg.Epochs, BatchSize: cfg.BatchSize})

	variants := []Variant{{
		Tier: TierFull, Name: "full-fp32", Model: full,
		Accuracy: full.Accuracy(eval.X, eval.Labels),
		FLOPs:    full.FLOPs(1), Bytes: full.ParamBytes(32),
	}}
	if cfg.Float32 {
		f32 := quant.CompileF32MLP(full)
		variants[0] = Variant{
			Tier: TierFull, Name: "full-f32", Model: f32,
			Accuracy: f32.Accuracy(eval.X, eval.Labels),
			FLOPs:    full.FLOPs(1), Bytes: f32.Bytes(),
		}
	}

	// Quantized: the integer-only inference path — same architecture,
	// int8 weights, a quarter of the streamed bytes.
	im := quant.CompileIntMLP(full)
	variants = append(variants, Variant{
		Tier: TierQuantized, Name: "int8", Model: im,
		Accuracy: im.Accuracy(eval.X, eval.Labels),
		FLOPs:    full.FLOPs(1), Bytes: im.Bytes(),
	})

	// Distilled: a narrow student taught by the full model.
	sCfg := nn.MLPConfig{In: cfg.Features, Hidden: []int{cfg.DistillWidth}, Out: cfg.Classes}
	student := nn.NewMLP(rng, sCfg)
	distill.Distill(rng, full, student, train.X, y, distill.Config{
		Alpha: 0.3, T: 3, Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, LR: cfg.LR,
	})
	variants = append(variants, Variant{
		Tier: TierDistilled, Name: fmt.Sprintf("distilled-w%d", cfg.DistillWidth), Model: student,
		Accuracy: student.Accuracy(eval.X, eval.Labels),
		FLOPs:    student.FLOPs(1), Bytes: student.ParamBytes(32),
	})

	// Pruned: sparsify a clone of the full model, fine-tune briefly, and
	// deploy in a sparse format. An idealised sparse kernel skips the
	// zeroed multiplies, so per-request FLOPs shrink with sparsity.
	pruned := nn.CloneMLP(full, rand.New(rand.NewSource(cfg.Seed+1)), mlpCfg)
	ptr := nn.NewTrainer(pruned, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(cfg.LR), rng)
	if err := prune.GlobalPrune(rng, pruned, cfg.PruneSparsity, prune.Magnitude); err != nil {
		return nil, nil, err
	}
	ptr.Fit(train.X, y, nn.TrainConfig{Epochs: cfg.Epochs / 5, BatchSize: cfg.BatchSize})
	sparseFLOPs := int64(float64(pruned.FLOPs(1)) * (1 - cfg.PruneSparsity))
	if sparseFLOPs < 1 {
		sparseFLOPs = 1
	}
	variants = append(variants, Variant{
		Tier: TierPruned, Name: fmt.Sprintf("pruned-%.0f%%", cfg.PruneSparsity*100), Model: pruned,
		Accuracy: pruned.Accuracy(eval.X, eval.Labels),
		FLOPs:    sparseFLOPs, Bytes: prune.NonzeroParamBytes(pruned),
	})
	return variants, eval, nil
}
