package serve

import (
	"fmt"

	"dlsys/internal/obs"
	"dlsys/internal/sim"
)

// Deterministic autoscaler. It is an actor on the simulation kernel that
// wakes on a fixed cadence, reads the fleet's queue-delay-estimate gauge
// from internal/obs — the same instrument a dashboard would alert on —
// and adjusts the replica target: scale up when the estimated delay
// crosses the up threshold (new replicas come online only after a
// provisioning lag), scale back down toward the floor when the delay has
// collapsed. A cooldown separates decisions so the lag cannot cause
// oscillation. Because it runs on the kernel's event order and reads
// gauges written by deterministic call sites, two runs of the same
// scenario scale identically.

// AutoscaleConfig tunes the fleet autoscaler.
type AutoscaleConfig struct {
	// Disabled turns scaling off; the fleet keeps its initial replicas.
	Disabled bool
	// MaxReplicas caps the fleet size (default 2x initial replicas). The
	// floor is the configured initial replica count.
	MaxReplicas int
	// IntervalS is the decision cadence (default 5 deadlines).
	IntervalS float64
	// LagS is the provisioning delay between a scale-up decision and the
	// new replicas serving traffic (default 3 intervals).
	LagS float64
	// CooldownS is the minimum time between decisions (default 2 intervals).
	CooldownS float64
	// UpDelayS is the queue-delay estimate at which the fleet scales up
	// (default half the deadline).
	UpDelayS float64
	// DownDelayS is the estimate below which it scales back toward the
	// floor (default 2% of the deadline).
	DownDelayS float64
}

func (c *AutoscaleConfig) defaults(replicas int, deadlineS float64) {
	if c.MaxReplicas <= 0 {
		c.MaxReplicas = 2 * replicas
	}
	if c.IntervalS <= 0 {
		c.IntervalS = 5 * deadlineS
	}
	if c.LagS <= 0 {
		c.LagS = 3 * c.IntervalS
	}
	if c.CooldownS <= 0 {
		c.CooldownS = 2 * c.IntervalS
	}
	if c.UpDelayS <= 0 {
		c.UpDelayS = deadlineS / 2
	}
	if c.DownDelayS <= 0 {
		c.DownDelayS = deadlineS / 50
	}
}

func (c AutoscaleConfig) validate(replicas int) error {
	if c.Disabled {
		return nil
	}
	if c.MaxReplicas > 0 && c.MaxReplicas < replicas {
		return &ConfigError{Field: "Autoscale.MaxReplicas",
			Reason: fmt.Sprintf("%d below the initial fleet size %d", c.MaxReplicas, replicas)}
	}
	if c.DownDelayS > 0 && c.UpDelayS > 0 && c.DownDelayS >= c.UpDelayS {
		return &ConfigError{Field: "Autoscale.DownDelayS",
			Reason: "scale-down threshold must sit below the scale-up threshold"}
	}
	return nil
}

// autoscaler drives one fleet's replica target from its obs gauges.
type autoscaler struct {
	cfg   AutoscaleConfig
	fleet *Fleet
	actor *sim.Actor

	delay *obs.Gauge // fleet.queue_delay_est, written by admission

	min, max      int
	cooldownUntil float64
}

func newAutoscaler(cfg AutoscaleConfig, f *Fleet, actor *sim.Actor, delay *obs.Gauge) *autoscaler {
	cfg.defaults(f.cfg.Replicas, f.cfg.DeadlineS)
	return &autoscaler{
		cfg: cfg, fleet: f, actor: actor, delay: delay,
		min: f.cfg.Replicas, max: cfg.MaxReplicas,
	}
}

// start schedules the decision loop; it keeps firing until the fleet has
// finalized every request.
func (a *autoscaler) start(t0 float64) {
	if a.cfg.Disabled {
		return
	}
	a.actor.Every(t0+a.cfg.IntervalS, a.cfg.IntervalS, a.decide)
}

// decide is one control tick. Scale-up adds half the current fleet again
// (capped), online after LagS; scale-down retires surplus immediately
// (idle replicas first, busy ones as they complete).
func (a *autoscaler) decide(now float64) bool {
	f := a.fleet
	if f.finalized >= f.cfg.Requests {
		return false // day over; stop the cadence
	}
	if now < a.cooldownUntil {
		return true
	}
	d := a.delay.Value()
	switch {
	case d > a.cfg.UpDelayS && f.desired < a.max:
		add := f.desired / 2
		if add < 1 {
			add = 1
		}
		if f.desired+add > a.max {
			add = a.max - f.desired
		}
		// Raise the target at decision time so the pending activation is
		// counted: completions must not retire the new replicas the moment
		// they come online, and the next tick must not double-order them.
		f.desired += add
		a.cooldownUntil = now + a.cfg.CooldownS
		a.actor.After(a.cfg.LagS, func(stamp float64) {
			f.addReplicas(add, stamp)
		})
	case d < a.cfg.DownDelayS && f.desired > a.min:
		a.cooldownUntil = now + a.cfg.CooldownS
		f.removeReplicas(f.desired-a.min, now)
	}
	return true
}
