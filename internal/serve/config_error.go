package serve

import "fmt"

// ConfigError is a typed validation failure for a degenerate serving
// config field: which field, and why its value cannot run. It matches the
// distributed.ConfigError pattern so callers screen bad configs the same
// way on both sides of the stack (errors.As against *serve.ConfigError).
type ConfigError struct {
	Field  string
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("serve: config %s %s", e.Field, e.Reason)
}
