package serve

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dlsys/internal/device"
	"dlsys/internal/fault"
	"dlsys/internal/obs"
	"dlsys/internal/sim"
	"dlsys/internal/tensor"
)

// Replica is one serving worker: a model variant hosted on a device cost
// model. Its per-request service time is the device's ServeTime for the
// variant's streamed bytes and FLOPs.
type Replica struct {
	Variant    Variant
	Device     device.Profile
	Efficiency float64 // fraction of peak compute achieved, (0, 1]
}

// ServiceS is the fault-free per-request service time of the replica.
func (r Replica) ServiceS() float64 {
	return r.Device.ServeTime(r.Variant.Bytes, r.Variant.FLOPs, r.Efficiency)
}

// Config declares one serving run. Durations are simulated seconds; the
// zero value of every tunable takes a default derived from the fleet's
// fastest full-tier service time, so one knob (ArrivalRate) scales load.
type Config struct {
	Seed     int64
	Faults   fault.Config // replica-level fault injection (crash/straggle/drop/corrupt)
	Replicas []Replica

	ArrivalRate float64 // mean requests per simulated second (Poisson)
	Requests    int     // number of requests to simulate

	DeadlineS   float64 // per-request deadline from arrival (default 8x base service)
	QueueCap    int     // max requests queued per replica (default 4)
	MaxAttempts int     // primary attempts per request, 1..4 (default 3)
	BackoffS    float64 // initial retry backoff, doubling per retry (default 0.25x base service)
	RestartS    float64 // how long a crashed replica stays down (default 25x base service)

	HedgeQuantile   float64 // launch a hedge when an attempt exceeds this latency quantile; 0 disables
	HedgeMinSamples int     // latency samples needed before hedging (default 16)

	Breaker BreakerConfig // per-replica circuit breaker (CooldownS default 20x base service)

	// Fallback routes to degraded tiers when every better tier is
	// saturated or broken. When false only the best (lowest) tier
	// present in the fleet serves traffic.
	Fallback bool

	// Eval scores the accuracy of the actually-served response mix:
	// request i carries eval row i mod N, answered by whichever variant
	// served it. Optional; without it Correct/MixAccuracy stay zero.
	EvalX      *tensor.Tensor
	EvalLabels []int

	// Obs, when non-nil, receives live metrics (outcome counters mirroring
	// the Result tallies, per-tier latency histograms, breaker transition
	// counters) and one span per request stamped from the simulated clock.
	// Nil disables instrumentation at near-zero cost.
	Obs *obs.Handle

	// Kernel, when non-nil, is the shared simulation kernel request
	// arrivals are scheduled on, letting the serving fleet compose with
	// other kernel-driven components (distributed training, scheduled
	// fault windows) on one timeline. Nil creates a private kernel and
	// reproduces the historical standalone behaviour bit-for-bit.
	Kernel *sim.Kernel
}

// baseServiceS is the fastest fault-free service time among lowest-tier
// replicas — the natural time unit of the fleet.
func (c Config) baseServiceS() float64 {
	best := 0.0
	bestTier := Tier(-1)
	for _, r := range c.Replicas {
		s := r.ServiceS()
		if bestTier < 0 || r.Variant.Tier < bestTier || (r.Variant.Tier == bestTier && s < best) {
			best, bestTier = s, r.Variant.Tier
		}
	}
	return best
}

func (c *Config) defaults() {
	base := c.baseServiceS()
	if c.DeadlineS <= 0 {
		c.DeadlineS = 8 * base
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffS <= 0 {
		c.BackoffS = 0.25 * base
	}
	if c.RestartS <= 0 {
		c.RestartS = 25 * base
	}
	if c.HedgeMinSamples <= 0 {
		c.HedgeMinSamples = 16
	}
	if c.Breaker.CooldownS <= 0 {
		c.Breaker.CooldownS = 20 * base
	}
	c.Breaker.defaults()
}

// validateFleet checks the replica set. It must pass before defaults()
// derives time units from replica service times.
func (c Config) validateFleet() error {
	if len(c.Replicas) == 0 {
		return &ConfigError{Field: "Replicas", Reason: "must list at least one replica"}
	}
	for i, r := range c.Replicas {
		if r.Efficiency <= 0 || r.Efficiency > 1 {
			return &ConfigError{Field: fmt.Sprintf("Replicas[%d].Efficiency", i),
				Reason: fmt.Sprintf("%g out of (0,1]", r.Efficiency)}
		}
		if r.Variant.Bytes <= 0 || r.Variant.FLOPs <= 0 {
			return &ConfigError{Field: fmt.Sprintf("Replicas[%d].Variant", i),
				Reason: fmt.Sprintf("%q has non-positive cost (bytes=%d flops=%d)",
					r.Variant.Name, r.Variant.Bytes, r.Variant.FLOPs)}
		}
		if r.Variant.Tier < TierFull || r.Variant.Tier >= numTiers {
			return &ConfigError{Field: fmt.Sprintf("Replicas[%d].Variant.Tier", i),
				Reason: fmt.Sprintf("unknown tier %d", r.Variant.Tier)}
		}
	}
	return nil
}

func (c Config) validate() error {
	if c.ArrivalRate <= 0 {
		return &ConfigError{Field: "ArrivalRate",
			Reason: fmt.Sprintf("must be positive, got %g", c.ArrivalRate)}
	}
	if c.Requests <= 0 {
		return &ConfigError{Field: "Requests",
			Reason: fmt.Sprintf("must be positive, got %d", c.Requests)}
	}
	// The fault hash stream encodes (request, attempt) with primary
	// attempts in slots 0..3 and hedges in 4..7, so more than 4 primary
	// attempts would collide with hedge draws.
	if c.MaxAttempts > 4 {
		return &ConfigError{Field: "MaxAttempts",
			Reason: fmt.Sprintf("%d exceeds 4", c.MaxAttempts)}
	}
	if c.HedgeQuantile < 0 || c.HedgeQuantile >= 1 {
		return &ConfigError{Field: "HedgeQuantile",
			Reason: fmt.Sprintf("%g out of [0,1)", c.HedgeQuantile)}
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return c.Breaker.validate()
}

// Outcome classifies how a request ended.
type Outcome int

// Request outcomes.
const (
	// Served: a replica returned a correct-by-construction response
	// before the deadline.
	Served Outcome = iota
	// Shed: admission control rejected the request up front because no
	// admissible replica could meet its deadline budget.
	Shed
	// Failed: all attempts (and any hedge) failed or missed the deadline.
	Failed
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Served:
		return "served"
	case Shed:
		return "shed"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// RequestRecord is one line of the request ledger.
type RequestRecord struct {
	ID       int
	ArrivalS float64
	FinishS  float64 // completion (served), rejection (shed), or last failure time
	LatencyS float64 // FinishS - ArrivalS for served requests, else 0
	Outcome  Outcome
	Tier     Tier // tier that served it (served only)
	Replica  int  // replica that served it, -1 otherwise
	Attempts int  // primary attempts dispatched
	Hedged   bool // a hedge was launched
	HedgeWon bool // the hedge beat (or outlived) the primary
	Correct  bool // served response matched the eval label
}

// Result summarises a run. Records is the full deterministic ledger.
type Result struct {
	Records []RequestRecord

	Served, Shed, Failed int
	Availability         float64 // served / total
	ShedRate             float64
	P50S, P99S           float64 // latency of served requests

	HedgesLaunched, HedgeWins      int
	BreakerOpened, BreakerReclosed int // transitions summed over replicas

	TierCounts  [4]int  // served requests per tier
	MixAccuracy float64 // accuracy of the actually-served response mix
}

// Fingerprint returns an FNV-1a hash over the full request ledger. Two
// runs of the same seeded scenario must produce identical fingerprints;
// composed experiments (X10) cross-check it against the metric, trace,
// and kernel fingerprints.
func (r Result) Fingerprint() uint64 {
	h := fnv.New64a()
	for _, rec := range r.Records {
		fmt.Fprintf(h, "%d|%.17g|%.17g|%d|%d|%d|%d|%v|%v|%v\n",
			rec.ID, rec.ArrivalS, rec.FinishS, rec.Outcome, rec.Tier,
			rec.Replica, rec.Attempts, rec.Hedged, rec.HedgeWon, rec.Correct)
	}
	return h.Sum64()
}

// replicaState is the simulator's per-replica mutable state.
type replicaState struct {
	busyUntilS float64
	downUntilS float64
	done       []float64 // completion times of dispatched work, ascending
	br         *Breaker
}

func (rs *replicaState) pending(now float64) int {
	// done is ascending; count entries still in the future.
	i := sort.SearchFloat64s(rs.done, now)
	return len(rs.done) - i
}

// attemptResult is the outcome of one dispatched attempt.
type attemptResult struct {
	ok       bool
	finishS  float64
	replica  int
	rejected bool // no admissible replica; nothing was dispatched
}

// Server runs the simulated serving loop.
type Server struct {
	cfg     Config
	inj     *fault.Injector
	k       *sim.Kernel
	actor   *sim.Actor
	states  []*replicaState
	byTier  [][]int // replica indices per tier, ascending id
	minTier Tier    // best tier present in the fleet

	// latency ring of recent successful attempt durations, for the
	// hedging quantile estimate.
	lat     []float64
	latHead int
	latN    int

	preds [numTiers][]int // per-tier predictions over the eval rows

	obs *serveObs

	// Run-in-progress accumulation, folded request by request as arrival
	// events execute and finalised by Result.
	res             Result
	correct, scored int
	started         bool
	finished        bool
}

// NewServer validates the config and prepares a server. The same server
// must not be reused across runs; build a fresh one per Run.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.validateFleet(); err != nil {
		return nil, err
	}
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.Kernel
	if k == nil {
		k = sim.New()
	}
	s := &Server{
		cfg:    cfg,
		inj:    fault.NewInjector(cfg.Faults),
		k:      k,
		actor:  k.Actor("serve"),
		byTier: make([][]int, numTiers),
		lat:    make([]float64, 64),
		obs:    newServeObs(cfg.Obs),
	}
	s.inj.SetClock(k)
	s.minTier = numTiers
	for i, r := range cfg.Replicas {
		br := NewBreaker(cfg.Breaker)
		br.instrument(s.obs.breakerOpened, s.obs.breakerReclosed)
		s.states = append(s.states, &replicaState{br: br})
		s.byTier[r.Variant.Tier] = append(s.byTier[r.Variant.Tier], i)
		if r.Variant.Tier < s.minTier {
			s.minTier = r.Variant.Tier
		}
	}
	if cfg.EvalX != nil {
		var reps [numTiers]Predictor
		for t := TierFull; t < numTiers; t++ {
			for _, ri := range s.byTier[t] {
				reps[t] = cfg.Replicas[ri].Variant.Model
				break // one variant per tier is enough
			}
		}
		s.preds = tierPredictions(reps, cfg.EvalX)
	}
	return s, nil
}

// Breaker exposes replica i's circuit breaker (for tests and ledgers).
func (s *Server) Breaker(i int) *Breaker { return s.states[i].br }

// Kernel returns the simulation kernel arrivals are scheduled on.
func (s *Server) Kernel() *sim.Kernel { return s.k }

// Run simulates the configured request stream and returns the ledger. It
// is the standalone wrapper over the kernel-driven API: schedule the
// arrival chain, drain the kernel, collect the result. With a shared
// Config.Kernel, draining runs every component's pending events, so
// composed experiments use Start/Result directly instead.
func (s *Server) Run() Result {
	s.Start()
	s.k.Run()
	return s.Result()
}

// Start schedules the request stream on the kernel: the first arrival is
// drawn from the stream's deterministic gap sequence, and each arrival
// event schedules its successor, so the whole stream interleaves with any
// other work sharing the kernel. Arrival gaps are resolved against the
// fault schedule at the previous arrival's instant — a flash-crowd window
// compresses exactly the gaps that fall inside it.
func (s *Server) Start() {
	if s.started {
		return
	}
	s.started = true
	if s.cfg.Requests == 0 {
		return
	}
	t0 := s.k.Now()
	mean := 1 / s.cfg.ArrivalRate
	s.actor.At(t0+s.inj.ArrivalGapAt(0, mean, t0), s.onArrival(0))
}

// onArrival builds the arrival event for request i: serve it at its
// stamped arrival instant, fold the record into the running result, and
// schedule the next arrival.
func (s *Server) onArrival(i int) func(stamp float64) {
	return func(stamp float64) {
		rec := s.serveOne(i, stamp)
		s.obs.record(&rec)
		s.res.Records = append(s.res.Records, rec)
		switch rec.Outcome {
		case Served:
			s.res.Served++
			s.res.TierCounts[rec.Tier]++
			if s.cfg.EvalX != nil {
				s.scored++
				if rec.Correct {
					s.correct++
				}
			}
		case Shed:
			s.res.Shed++
		case Failed:
			s.res.Failed++
		}
		if rec.Hedged {
			s.res.HedgesLaunched++
		}
		if rec.HedgeWon {
			s.res.HedgeWins++
		}
		if next := i + 1; next < s.cfg.Requests {
			mean := 1 / s.cfg.ArrivalRate
			s.actor.At(stamp+s.inj.ArrivalGapAt(next, mean, stamp), s.onArrival(next))
		}
	}
}

// Result finalises and returns the run summary. Call it after the kernel
// has drained the arrival chain; calling again returns the same result.
func (s *Server) Result() Result {
	if s.finished {
		return s.res
	}
	s.finished = true
	total := float64(s.cfg.Requests)
	s.res.Availability = float64(s.res.Served) / total
	s.res.ShedRate = float64(s.res.Shed) / total
	var lats []float64
	for _, r := range s.res.Records {
		if r.Outcome == Served {
			lats = append(lats, r.LatencyS)
		}
	}
	s.res.P50S = quantile(lats, 0.5)
	s.res.P99S = quantile(lats, 0.99)
	for _, st := range s.states {
		s.res.BreakerOpened += st.br.Opened()
		s.res.BreakerReclosed += st.br.Reclosed()
	}
	if s.scored > 0 {
		s.res.MixAccuracy = float64(s.correct) / float64(s.scored)
	}
	return s.res
}

// serveOne walks one request through admission, attempts, retries, and
// hedging, returning its ledger line.
func (s *Server) serveOne(id int, arrival float64) RequestRecord {
	rec := RequestRecord{ID: id, ArrivalS: arrival, Replica: -1}
	deadline := arrival + s.cfg.DeadlineS
	dispatch := arrival
	lastFail := arrival
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if dispatch > deadline {
			break
		}
		prim := s.dispatch(id, attempt, dispatch, deadline, -1, Tier(-1))
		if prim.rejected {
			// Admission control: nothing can meet the deadline budget.
			// On first contact that is a shed (the client is told
			// immediately); mid-retry it is a failure.
			if attempt == 0 {
				rec.Outcome = Shed
				rec.FinishS = dispatch
				return rec
			}
			break
		}
		rec.Attempts++
		winner := prim
		failEnd := prim.finishS
		// Hedge: if the attempt ran past the latency quantile, a second
		// copy was sent at the moment the quantile elapsed, to a
		// different replica of the SAME tier (hedging fights latency;
		// tier degradation is the router's job). Earliest in-deadline
		// success wins.
		if q, ok := s.hedgeLatency(); ok && prim.finishS-dispatch > q {
			hd := dispatch + q
			if hd <= deadline {
				primTier := s.cfg.Replicas[prim.replica].Variant.Tier
				hedge := s.dispatch(id, attempt+4, hd, deadline, prim.replica, primTier)
				if !hedge.rejected {
					rec.Hedged = true
					if hedge.finishS > failEnd {
						failEnd = hedge.finishS
					}
					primGood := prim.ok && prim.finishS <= deadline
					hedgeGood := hedge.ok && hedge.finishS <= deadline
					if hedgeGood && (!primGood || hedge.finishS < prim.finishS) {
						winner = hedge
						rec.HedgeWon = true
					}
				}
			}
		}
		if winner.ok && winner.finishS <= deadline {
			rec.Outcome = Served
			rec.FinishS = winner.finishS
			rec.LatencyS = winner.finishS - arrival
			rec.Replica = winner.replica
			rec.Tier = s.cfg.Replicas[winner.replica].Variant.Tier
			if s.cfg.EvalX != nil {
				row := id % len(s.cfg.EvalLabels)
				rec.Correct = s.preds[rec.Tier][row] == s.cfg.EvalLabels[row]
			}
			return rec
		}
		// Every copy failed or finished past the deadline: retry with
		// exponential backoff from the latest failure.
		lastFail = failEnd
		backoff := s.cfg.BackoffS * float64(int(1)<<attempt)
		dispatch = lastFail + backoff
	}
	rec.Outcome = Failed
	rec.FinishS = lastFail
	return rec
}

// dispatch routes one attempt: picks the best admissible replica, charges
// its device, draws faults, advances replica state, and feeds the
// breaker. exclude (-1 for none) bars the primary's replica from hedges;
// onlyTier (-1 for any) pins hedges to the primary's tier.
func (s *Server) dispatch(id, attempt int, now, deadline float64, exclude int, onlyTier Tier) attemptResult {
	ri := s.route(now, deadline, exclude, onlyTier)
	if ri < 0 {
		return attemptResult{rejected: true}
	}
	st := s.states[ri]
	rep := s.cfg.Replicas[ri]
	service := rep.ServiceS()
	start := now
	if st.busyUntilS > start {
		start = st.busyUntilS
	}

	// A down replica fails fast: the connection is refused after a
	// fraction of a service time, without occupying the worker.
	if st.downUntilS > now {
		finish := now + 0.1*service
		st.br.Record(finish, false)
		return attemptResult{ok: false, finishS: finish, replica: ri}
	}

	// Draw this attempt's faults from independent per-(replica, request,
	// attempt) hash streams, resolved against the fault schedule at the
	// attempt's own simulated instant (requests carry absolute times, so
	// a crash window hits exactly the attempts dispatched inside it).
	crashed := s.inj.ChanceAt(fault.KindCrash, ri, id, attempt, s.cfg.Faults.CrashProb, now)
	factor := 1.0
	if s.inj.ChanceAt(fault.KindStraggle, ri, id, attempt, s.cfg.Faults.StragglerProb, now) {
		factor = s.cfg.Faults.StragglerFactor
		if wf := s.inj.FactorAt(fault.KindStraggle, ri, now); wf > 1 {
			factor = wf
		}
		if factor <= 1 {
			factor = 8
		}
	}
	dropped := s.inj.ChanceAt(fault.KindDrop, ri, id, attempt, s.cfg.Faults.DropProb, now)
	corrupted := s.inj.ChanceAt(fault.KindCorrupt, ri, id, attempt, s.cfg.Faults.CorruptProb, now)

	work := service * factor
	switch {
	case crashed:
		// The replica dies mid-request and needs a restart.
		finish := start + 0.5*work
		st.busyUntilS = finish
		st.downUntilS = finish + s.cfg.RestartS
		st.done = append(st.done, finish)
		st.br.Record(finish, false)
		return attemptResult{ok: false, finishS: finish, replica: ri}
	case dropped, corrupted:
		// Full work done, but the response is lost or fails its check.
		finish := start + work
		st.busyUntilS = finish
		st.done = append(st.done, finish)
		st.br.Record(finish, false)
		return attemptResult{ok: false, finishS: finish, replica: ri}
	default:
		finish := start + work
		st.busyUntilS = finish
		st.done = append(st.done, finish)
		st.br.Record(finish, true)
		s.recordLatency(finish - now)
		return attemptResult{ok: true, finishS: finish, replica: ri}
	}
}

// route picks the serving replica for an attempt: tiers are tried best
// first (only the best tier when Fallback is off; only onlyTier when it
// is set); within a tier the admissible replica with the earliest
// projected start wins, ties broken by lowest id. A replica is admissible
// when its breaker allows traffic, its queue has room, and its projected
// completion meets the deadline.
func (s *Server) route(now, deadline float64, exclude int, onlyTier Tier) int {
	from, to := s.minTier, numTiers
	if onlyTier >= 0 {
		from, to = onlyTier, onlyTier+1
	}
	for t := from; t < to; t++ {
		best, bestStart := -1, 0.0
		for _, ri := range s.byTier[t] {
			if ri == exclude {
				continue
			}
			st := s.states[ri]
			if !st.br.Allow(now) {
				continue
			}
			if st.pending(now) >= s.cfg.QueueCap {
				continue
			}
			start := now
			if st.busyUntilS > start {
				start = st.busyUntilS
			}
			if start+s.cfg.Replicas[ri].ServiceS() > deadline {
				continue // queue wait already blows the deadline budget
			}
			if best < 0 || start < bestStart {
				best, bestStart = ri, start
			}
		}
		if best >= 0 {
			return best
		}
		if !s.cfg.Fallback {
			break
		}
	}
	return -1
}

// hedgeLatency returns the current hedging trigger (the configured
// quantile of recent successful attempt latencies) once enough samples
// have accumulated.
func (s *Server) hedgeLatency() (float64, bool) {
	if s.cfg.HedgeQuantile <= 0 || s.latN < s.cfg.HedgeMinSamples {
		return 0, false
	}
	window := make([]float64, s.latN)
	copy(window, s.lat[:s.latN])
	return quantile(window, s.cfg.HedgeQuantile), true
}

func (s *Server) recordLatency(d float64) {
	s.lat[s.latHead] = d
	s.latHead = (s.latHead + 1) % len(s.lat)
	if s.latN < len(s.lat) {
		s.latN++
	}
}

// quantile returns the q-quantile of xs by nearest-rank on a sorted copy;
// 0 for an empty slice.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
