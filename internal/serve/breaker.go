// Package serve is a deterministic, simulated-time model-serving layer:
// a Server fronts a fleet of replica workers, each hosting one model
// variant (full precision or a compressed tier) on a device cost model,
// and routes requests through admission control, retries with hedging,
// per-replica circuit breakers, and graceful degradation to cheaper
// tiers. All randomness — arrivals and injected replica faults — comes
// from the order-independent hash streams of internal/fault, so the same
// seed always reproduces the same request ledger, bit for bit.
package serve

import (
	"fmt"

	"dlsys/internal/obs"
)

// BreakerState is the classic three-state circuit-breaker automaton.
type BreakerState int

// Breaker states.
const (
	// Closed passes traffic and watches the failure rate.
	Closed BreakerState = iota
	// Open rejects traffic until a cooldown elapses.
	Open
	// HalfOpen admits a few probe requests; success re-closes, failure
	// re-opens.
	HalfOpen
)

// String names the state for logs and tables.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes one replica's circuit breaker.
type BreakerConfig struct {
	// Window is the sliding window of recent request outcomes consulted
	// for the failure rate (default 16).
	Window int
	// MinSamples is how many outcomes the window must hold before the
	// breaker may trip (default Window/2), so one early failure cannot
	// open it.
	MinSamples int
	// FailureRate is the windowed failure fraction at or above which the
	// breaker opens (default 0.5).
	FailureRate float64
	// CooldownS is how long (simulated seconds) the breaker stays open
	// before admitting probes. Must be positive.
	CooldownS float64
	// HalfOpenProbes is how many consecutive probe successes re-close the
	// breaker (default 2).
	HalfOpenProbes int
}

func (c *BreakerConfig) defaults() {
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
	}
	if c.FailureRate <= 0 {
		c.FailureRate = 0.5
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
}

func (c BreakerConfig) validate() error {
	if c.CooldownS <= 0 {
		return &ConfigError{Field: "Breaker.CooldownS",
			Reason: fmt.Sprintf("must be positive, got %g", c.CooldownS)}
	}
	if c.FailureRate > 1 {
		return &ConfigError{Field: "Breaker.FailureRate",
			Reason: fmt.Sprintf("%g out of (0,1]", c.FailureRate)}
	}
	if c.MinSamples > c.Window {
		return &ConfigError{Field: "Breaker.MinSamples",
			Reason: fmt.Sprintf("%d exceeds Window %d", c.MinSamples, c.Window)}
	}
	return nil
}

// Breaker guards one replica. It is driven entirely by simulated
// timestamps passed in by the caller, so it is as deterministic as the
// event stream feeding it.
type Breaker struct {
	cfg BreakerConfig

	state    BreakerState
	openedAt float64 // when the breaker last opened

	window []bool // ring of outcomes, true = failure
	head   int
	filled int

	probeOK int // consecutive probe successes while half-open

	opened   int // Closed/HalfOpen -> Open transitions
	reclosed int // HalfOpen -> Closed transitions

	// Optional transition counters, incremented at the exact sites the
	// opened/reclosed tallies change (nil-safe no-ops by default).
	onOpen, onReclose *obs.Counter
}

// NewBreaker builds a breaker; zero-valued config fields take defaults.
// CooldownS must be set (validated by the Server's config).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.defaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// State reports the current automaton state.
func (b *Breaker) State() BreakerState { return b.state }

// Opened counts how many times the breaker has tripped open.
func (b *Breaker) Opened() int { return b.opened }

// Reclosed counts how many times it has recovered to closed.
func (b *Breaker) Reclosed() int { return b.reclosed }

// Allow reports whether a request may be sent to the replica at the given
// simulated time. An open breaker whose cooldown has elapsed transitions
// to half-open and admits the probe.
func (b *Breaker) Allow(now float64) bool {
	switch b.state {
	case Closed:
		return true
	case Open:
		if now >= b.openedAt+b.cfg.CooldownS {
			b.state = HalfOpen
			b.probeOK = 0
			return true
		}
		return false
	case HalfOpen:
		return true
	}
	return false
}

// Record feeds one request outcome (observed at simulated time now) into
// the breaker.
func (b *Breaker) Record(now float64, ok bool) {
	switch b.state {
	case HalfOpen:
		if !ok {
			b.trip(now)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			b.state = Closed
			b.reclosed++
			b.onReclose.Inc()
			b.resetWindow()
		}
	case Closed:
		b.window[b.head] = !ok
		b.head = (b.head + 1) % len(b.window)
		if b.filled < len(b.window) {
			b.filled++
		}
		if b.filled >= b.cfg.MinSamples && b.failureRate() >= b.cfg.FailureRate {
			b.trip(now)
		}
	case Open:
		// A late completion from before the trip; the window restarts
		// from scratch on re-close, so drop it.
	}
}

func (b *Breaker) trip(now float64) {
	b.state = Open
	b.openedAt = now
	b.opened++
	b.onOpen.Inc()
	b.resetWindow()
}

// instrument attaches transition counters; nil counters stay no-ops.
func (b *Breaker) instrument(onOpen, onReclose *obs.Counter) {
	b.onOpen, b.onReclose = onOpen, onReclose
}

func (b *Breaker) resetWindow() {
	b.head, b.filled = 0, 0
}

func (b *Breaker) failureRate() float64 {
	fails := 0
	for i := 0; i < b.filled; i++ {
		if b.window[i] {
			fails++
		}
	}
	return float64(fails) / float64(b.filled)
}
