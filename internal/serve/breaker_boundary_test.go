package serve

import "testing"

// Boundary behavior of the breaker automaton: failure counts landing
// exactly on the open threshold, the sliding window wrapping over old
// outcomes, and half-open probe arithmetic at its exact limits.
func TestBreakerBoundaries(t *testing.T) {
	cfg := BreakerConfig{Window: 4, MinSamples: 4, FailureRate: 0.5, CooldownS: 10, HalfOpenProbes: 2}
	cases := []struct {
		name  string
		drive func(b *Breaker)
		state BreakerState
	}{
		{
			// 2 failures in a window of 4 is exactly the 0.5 threshold:
			// the trip condition is >=, so it opens.
			name: "failure rate exactly at threshold trips",
			drive: func(b *Breaker) {
				for i, ok := range []bool{true, false, true, false} {
					b.Record(float64(i), ok)
				}
			},
			state: Open,
		},
		{
			// 1 failure in 4 sits below the threshold.
			name: "failure rate below threshold stays closed",
			drive: func(b *Breaker) {
				for i, ok := range []bool{true, false, true, true} {
					b.Record(float64(i), ok)
				}
			},
			state: Closed,
		},
		{
			// 2 failures among only 3 samples exceed the rate but not
			// MinSamples: the guard holds the breaker closed.
			name: "min samples guard at window boundary",
			drive: func(b *Breaker) {
				for i, ok := range []bool{false, false, true} {
					b.Record(float64(i), ok)
				}
			},
			state: Closed,
		},
		{
			// Window wrap: 4 early successes fill the ring, then 2
			// failures overwrite the oldest entries. The windowed view is
			// [F, F, T, T] — exactly at threshold, so it trips; the
			// pre-wrap successes no longer dilute the rate.
			name: "sliding window wrap forgets old successes",
			drive: func(b *Breaker) {
				for i := 0; i < 4; i++ {
					b.Record(float64(i), true)
				}
				b.Record(4, false)
				b.Record(5, false)
			},
			state: Open,
		},
		{
			// Half-open: exactly HalfOpenProbes-1 successes are not
			// enough to re-close.
			name: "one probe short of re-close stays half-open",
			drive: func(b *Breaker) {
				trip(b)
				b.Allow(100) // cooldown elapsed: Open -> HalfOpen
				b.Record(100, true)
			},
			state: HalfOpen,
		},
		{
			// Exactly HalfOpenProbes successes re-close.
			name: "exact probe count re-closes",
			drive: func(b *Breaker) {
				trip(b)
				b.Allow(100)
				b.Record(100, true)
				b.Record(101, true)
			},
			state: Closed,
		},
		{
			// A probe failure after a probe success re-opens immediately —
			// probe successes must be consecutive.
			name: "probe failure re-opens regardless of earlier successes",
			drive: func(b *Breaker) {
				trip(b)
				b.Allow(100)
				b.Record(100, true)
				b.Record(101, false)
			},
			state: Open,
		},
		{
			// One tick before the cooldown elapses the breaker still
			// rejects; at exactly openedAt+CooldownS it probes.
			name: "cooldown boundary is inclusive",
			drive: func(b *Breaker) {
				trip(b) // opens at t=3
				if b.Allow(3 + cfgCooldown - 0.001) {
					panic("allowed before cooldown")
				}
				b.Allow(3 + cfgCooldown)
			},
			state: HalfOpen,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBreaker(cfg)
			tc.drive(b)
			if got := b.State(); got != tc.state {
				t.Fatalf("state = %v, want %v", got, tc.state)
			}
		})
	}
}

const cfgCooldown = 10.0

// trip drives a fresh breaker to Open with an exactly-at-threshold window
// ending at t=3.
func trip(b *Breaker) {
	for i, ok := range []bool{true, false, true, false} {
		b.Record(float64(i), ok)
	}
}

// TestBreakerWindowWrapNoDoubleCount drives many wraps and checks the
// failure rate is always computed over at most Window outcomes: a long
// alternating stream at rate 0.5 with threshold 0.75 must never trip no
// matter how often the ring wraps.
func TestBreakerWindowWrapNoDoubleCount(t *testing.T) {
	b := NewBreaker(BreakerConfig{Window: 4, MinSamples: 4, FailureRate: 0.75, CooldownS: 10})
	for i := 0; i < 1000; i++ {
		b.Record(float64(i), i%2 == 0)
		if b.State() != Closed {
			t.Fatalf("alternating stream tripped the breaker at outcome %d", i)
		}
	}
	if b.Opened() != 0 {
		t.Fatalf("breaker opened %d times", b.Opened())
	}
}
