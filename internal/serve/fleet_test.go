package serve

import (
	"reflect"
	"testing"
	"time"

	"dlsys/internal/fault"
	"dlsys/internal/obs"
)

// fleetScenario is the shared overload day the fleet tests run: 10
// replicas (~25k req/s capacity at full batch), 20k req/s offered (ρ=0.8),
// a ×4 flash crowd for t∈[0.5,0.8), and 60k requests total (~2.1s of
// virtual time). Arms toggle the control plane.
func fleetScenario(seed int64, requests int, fullPlane bool) FleetConfig {
	cfg := FleetConfig{
		Seed: seed,
		Faults: fault.Config{
			Seed: seed,
			Schedule: []fault.Window{
				{Kind: fault.KindArrival, StartS: 0.5, EndS: 0.8, Factor: 4},
			},
		},
		Tenants:     8,
		Requests:    requests,
		ArrivalRate: 20000,
		Replicas:    10,
		ServiceS:    1e-3,
		DeadlineS:   0.02,
		BackoffS:    0.01,
		BucketS:     0.05,
	}
	if fullPlane {
		cfg.Admission.Adaptive = true
		cfg.Autoscale.MaxReplicas = 20
		cfg.Autoscale.IntervalS = 0.05
		cfg.Autoscale.LagS = 0.1
		cfg.Autoscale.CooldownS = 0.1
	} else {
		cfg.Budget.Disabled = true
		cfg.Autoscale.Disabled = true
		cfg.Cache.Disabled = true
	}
	return cfg
}

func runFleet(t *testing.T, cfg FleetConfig) FleetResult {
	t.Helper()
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f.Run()
}

func TestFleetLowLoadServesEverything(t *testing.T) {
	cfg := fleetScenario(1, 20000, true)
	cfg.Faults.Schedule = nil // no crowd: pure ρ=0.8 steady state
	res := runFleet(t, cfg)
	if res.Availability < 0.999 {
		t.Fatalf("steady-state availability %.4f (served %d shed %d failed %d)",
			res.Availability, res.Served, res.Shed, res.Failed)
	}
	if res.P99S > cfg.DeadlineS {
		t.Fatalf("p99 %.4fs above the %.3fs deadline in a calm fleet", res.P99S, cfg.DeadlineS)
	}
	if res.Served+res.Shed+res.Failed != res.Requests {
		t.Fatalf("outcomes %d+%d+%d do not cover %d requests",
			res.Served, res.Shed, res.Failed, res.Requests)
	}
}

func TestFleetReplayIsBitIdentical(t *testing.T) {
	for _, full := range []bool{true, false} {
		cfg := fleetScenario(7, 30000, full)
		fa, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ra := fa.Run()
		fb, err := NewFleet(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rb := fb.Run()
		if ra.LedgerFP != rb.LedgerFP {
			t.Fatalf("full=%v: ledger fingerprints differ: %x vs %x", full, ra.LedgerFP, rb.LedgerFP)
		}
		if fa.Kernel().Fingerprint() != fb.Kernel().Fingerprint() {
			t.Fatalf("full=%v: kernel fingerprints differ", full)
		}
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("full=%v: results differ across identical runs", full)
		}
	}
	// Different seeds must produce different ledgers.
	a := runFleet(t, fleetScenario(7, 30000, true))
	b := runFleet(t, fleetScenario(8, 30000, true))
	if a.LedgerFP == b.LedgerFP {
		t.Fatal("different seeds produced identical ledger fingerprints")
	}
}

// TestFleetMetastableCollapseWithoutBudgets is the failure mode X14
// measures: with budgets off and the legacy fixed queue cap, the flash
// crowd fills the queue past the deadline horizon and client retries hold
// it there after the crowd passes — goodput stays collapsed at an offered
// load the fleet previously served in full.
func TestFleetMetastableCollapseWithoutBudgets(t *testing.T) {
	res := runFleet(t, fleetScenario(3, 60000, false))
	pre := res.GoodputOver(0.1, 0.5)
	post := res.GoodputOver(1.0, 2.0)
	if pre < 15000 {
		t.Fatalf("pre-crowd goodput %.0f req/s; the fleet should serve ~20k/s before the trigger", pre)
	}
	if post >= 0.5*pre {
		t.Fatalf("no metastable collapse: post-crowd goodput %.0f vs pre %.0f req/s", post, pre)
	}
}

// TestFleetControlPlaneRecovers is the other half: the full control plane
// (retry budgets, adaptive admission, autoscaling, cache) restores
// goodput to >=95%% of the pre-crowd level within 0.4 virtual seconds of
// the crowd's end.
func TestFleetControlPlaneRecovers(t *testing.T) {
	res := runFleet(t, fleetScenario(3, 60000, true))
	pre := res.GoodputOver(0.1, 0.5)
	rec := res.RecoveredBy(0.8, 0.95*pre)
	if rec < 0 || rec > 1.2 {
		t.Fatalf("goodput did not recover to 95%% of %.0f req/s by t=1.2 (recovered at %.2f)", pre, rec)
	}
	post := res.GoodputOver(1.2, 2.0)
	if post < 0.95*pre {
		t.Fatalf("recovery not sustained: post %.0f vs pre %.0f req/s", post, pre)
	}
	// Tenant isolation: nobody starves over the whole day.
	for i, ts := range res.Tenants {
		if ts.Availability < 0.5 {
			t.Fatalf("tenant %d availability %.3f below floor 0.5", i, ts.Availability)
		}
	}
}

func TestFleetAutoscalerScalesUpAndBack(t *testing.T) {
	res := runFleet(t, fleetScenario(5, 60000, true))
	if res.ScaleUpReplicas == 0 {
		t.Fatal("crowd did not trigger a scale-up")
	}
	if res.PeakReplicas <= 10 || res.PeakReplicas > 20 {
		t.Fatalf("peak replicas %d outside (10, 20]", res.PeakReplicas)
	}
	if res.ScaleDownReplicas == 0 {
		t.Fatal("fleet never scaled back after the crowd")
	}
	if res.FinalReplicas > res.PeakReplicas {
		t.Fatalf("final replicas %d above peak %d", res.FinalReplicas, res.PeakReplicas)
	}
}

func TestFleetCacheAbsorbsHotKeys(t *testing.T) {
	cfg := fleetScenario(9, 30000, true)
	cfg.Faults.Schedule = nil
	with := runFleet(t, cfg)
	if with.CacheHits == 0 {
		t.Fatal("zipf-skewed keys produced zero cache hits")
	}
	hitRate := float64(with.CacheHits) / float64(with.CacheHits+with.CacheMisses)
	if hitRate < 0.05 {
		t.Fatalf("cache hit rate %.3f too low for a skewed key stream", hitRate)
	}
	cfg.Cache.Disabled = true
	without := runFleet(t, cfg)
	if without.CacheHits != 0 {
		t.Fatalf("disabled cache reported %d hits", without.CacheHits)
	}
}

// TestFleetObsReconcilesWithLedger checks the X8-style contract on the
// fleet side: every obs counter equals its ledger tally exactly.
func TestFleetObsReconcilesWithLedger(t *testing.T) {
	cfg := fleetScenario(11, 30000, true)
	h := obs.NewHandle()
	cfg.Obs = h
	res := runFleet(t, cfg)
	counters := map[string]int{
		"fleet.served":            res.Served,
		"fleet.shed":              res.Shed,
		"fleet.failed":            res.Failed,
		"fleet.arrived":           res.Requests,
		"fleet.retries":           res.Retries,
		"fleet.retries_denied":    res.RetriesDenied,
		"fleet.cache_hits":        res.CacheHits,
		"fleet.cache_misses":      res.CacheMisses,
		"fleet.scale_up_replicas": res.ScaleUpReplicas,
	}
	for name, want := range counters {
		if got := h.Counter(name).Value(); got != int64(want) {
			t.Fatalf("%s = %d, ledger says %d", name, got, want)
		}
	}
	for i, ts := range res.Tenants {
		prefix := []string{"arrived", "served", "shed", "failed"}
		want := []int{ts.Arrived, ts.Served, ts.Shed, ts.Failed}
		for j, suffix := range prefix {
			name := TenantCounterName(i, suffix)
			if got := h.Counter(name).Value(); got != int64(want[j]) {
				t.Fatalf("%s = %d, ledger says %d", name, got, want[j])
			}
		}
	}
}

func TestFleetRetryStormIsolation(t *testing.T) {
	// Tenant 0 turns abusive for t∈[0.6,1.0): x3 retry aggression. With
	// the full plane, the weighted-fair caps plus budgets keep every
	// other tenant's availability near perfect.
	cfg := fleetScenario(13, 40000, true)
	cfg.Faults.Schedule = []fault.Window{
		{Kind: fault.KindRetryStorm, Workers: []int{0}, StartS: 0.6, EndS: 1.0, Factor: 3},
	}
	res := runFleet(t, cfg)
	for i, ts := range res.Tenants {
		if i == 0 {
			continue
		}
		if ts.Availability < 0.95 {
			t.Fatalf("tenant %d availability %.3f under tenant 0's retry storm", i, ts.Availability)
		}
	}
}

func TestFleetBrownoutRaisesLatency(t *testing.T) {
	cfg := fleetScenario(15, 30000, true)
	cfg.Faults.Schedule = nil
	calm := runFleet(t, cfg)
	cfg.Faults.Schedule = []fault.Window{
		{Kind: fault.KindBrownout, Workers: []int{0, 1, 2}, StartS: 0.2, EndS: 0.8, Factor: 2},
	}
	brown := runFleet(t, cfg)
	if brown.P99S <= calm.P99S {
		t.Fatalf("brownout p99 %.5f not above calm p99 %.5f", brown.P99S, calm.P99S)
	}
	if brown.Availability < 0.9 {
		t.Fatalf("mild brownout collapsed availability to %.3f", brown.Availability)
	}
}

func TestFleetConfigErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*FleetConfig)
	}{
		{"no requests", func(c *FleetConfig) { c.Requests = 0 }},
		{"no arrival rate", func(c *FleetConfig) { c.ArrivalRate = 0 }},
		{"too many attempts", func(c *FleetConfig) { c.MaxAttempts = 17 }},
		{"budget ratio", func(c *FleetConfig) { c.Budget.Ratio = 1.5 }},
		{"codel target", func(c *FleetConfig) { c.Admission.TargetS = 2; c.Admission.IntervalS = 1 }},
		{"scaler cap", func(c *FleetConfig) { c.Autoscale.MaxReplicas = 2 }},
		{"scaler thresholds", func(c *FleetConfig) { c.Autoscale.UpDelayS = 0.1; c.Autoscale.DownDelayS = 0.2 }},
	}
	for _, tc := range cases {
		cfg := fleetScenario(1, 1000, true)
		tc.mutate(&cfg)
		if _, err := NewFleet(cfg); err == nil {
			t.Fatalf("%s: bad config accepted", tc.name)
		}
	}
}

// TestFleetEventLoopThroughput is the CI guardrail: the event loop must
// sustain at least 100k simulated requests per wall-second. Skipped in
// -short runs (the -race matrix) where instrumentation skews timing.
func TestFleetEventLoopThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("timing guardrail: skipped under -short (race/instrumented builds)")
	}
	cfg := fleetScenario(21, 300000, true)
	f, err := NewFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res := f.Run()
	wall := time.Since(start).Seconds()
	rate := float64(res.Requests) / wall
	if rate < 100000 {
		t.Fatalf("event loop served %.0f simulated req/wall-second, below the 100k guardrail (%d requests in %.2fs)",
			rate, res.Requests, wall)
	}
	t.Logf("event loop: %.0f simulated requests/wall-second", rate)
}
