package serve

import (
	"fmt"
	"math"

	"dlsys/internal/fault"
	"dlsys/internal/nn"
	"dlsys/internal/obs"
	"dlsys/internal/sim"
	"dlsys/internal/tensor"
)

// Fleet is the planet-scale serving simulator: a discrete-event actor
// system on the internal/sim kernel that pushes millions of requests
// through a multi-tenant queue, batch-serving replicas, and an overload
// control plane — retry budgets, adaptive admission, weighted-fair tenant
// isolation, a deterministic autoscaler, and a hot-key result cache.
//
// Where the original Server walks each request through an analytic
// attempt loop (exact, but O(records) in memory and built for thousands
// of requests), the Fleet is built for scale: roughly two kernel events
// per request (one arrival, one amortized share of a batched completion),
// no per-request record storage — the ledger is an incremental FNV-1a
// fingerprint plus aggregate tallies and a fixed-width goodput timeline —
// and all request state travels through value-typed queue entries. Sweeps
// over >=1M requests run in wall seconds (the CI guardrail holds the
// event loop above 100k simulated requests per wall-second).
//
// The failure mode it exists to reproduce is *metastable* overload: a
// flash crowd fills the queue past the deadline horizon, every admitted
// request times out while still consuming full service capacity, and the
// clients' retries multiply the offered load enough to keep the queue
// pinned there after the crowd has passed — goodput stays collapsed
// indefinitely at an offered load the fleet handled fine before the
// trigger. Each control-plane piece attacks one link of that loop; X14
// measures the collapse with them off and the recovery with them on.

// FleetConfig declares one fleet run. All durations are simulated
// seconds. Zero values take defaults; the zero ServiceS is 1ms.
type FleetConfig struct {
	Seed   int64
	Faults fault.Config // scheduled windows: flash crowd, retry storm, brownout
	Kernel *sim.Kernel  // optional shared kernel (X10); nil = private
	Obs    *obs.Handle  // optional; the fleet builds a private handle when nil
	// because the autoscaler is driven by the gauges

	Tenants int     // client classes sharing the fleet (default 8)
	ZipfS   float64 // Zipf exponent of tenant traffic shares (default 1.1)

	Requests    int     // total first-attempt requests across tenants
	ArrivalRate float64 // aggregate mean arrivals per simulated second

	Replicas   int     // initial replica count (default 8)
	ServiceS   float64 // one fresh request's service time (default 1ms)
	BatchMax   int     // max requests coalesced per replica dispatch (default 4)
	BatchItemS float64 // marginal service time per extra batched item (default 0.2*ServiceS)

	DeadlineS   float64 // per-attempt deadline (default 20*ServiceS)
	MaxAttempts int     // client attempts incl. the first (default 3, max 16)
	BackoffS    float64 // base retry backoff, doubling per attempt (default DeadlineS/2)

	Keys    int     // hot-key space size (default 4096)
	KeySkew float64 // key popularity skew; higher = hotter head (default 3)

	Budget    RetryBudgetConfig
	Admission AdmissionConfig
	Autoscale AutoscaleConfig
	Cache     CacheConfig

	// CacheModels + EvalX, when set, give cached results real identities:
	// the fleet scores the models over EvalX through the batched BatMul
	// prediction path (batchPredict) and each key's cached value is the
	// prediction a replica hosting that key's model would compute.
	CacheModels []*nn.Network
	EvalX       *tensor.Tensor

	BucketS float64 // goodput timeline bucket width (default 10*DeadlineS)
}

func (c *FleetConfig) defaults() {
	if c.Tenants <= 0 {
		c.Tenants = 8
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.Replicas <= 0 {
		c.Replicas = 8
	}
	if c.ServiceS <= 0 {
		c.ServiceS = 1e-3
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 4
	}
	if c.BatchItemS <= 0 {
		c.BatchItemS = 0.2 * c.ServiceS
	}
	if c.DeadlineS <= 0 {
		c.DeadlineS = 20 * c.ServiceS
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffS <= 0 {
		c.BackoffS = c.DeadlineS / 2
	}
	if c.Keys <= 0 {
		c.Keys = 4096
	}
	if c.KeySkew <= 0 {
		c.KeySkew = 3
	}
	if c.BucketS <= 0 {
		c.BucketS = 10 * c.DeadlineS
	}
}

func (c FleetConfig) validate() error {
	if c.Requests <= 0 {
		return &ConfigError{Field: "Requests",
			Reason: fmt.Sprintf("must be positive, got %d", c.Requests)}
	}
	if c.ArrivalRate <= 0 {
		return &ConfigError{Field: "ArrivalRate",
			Reason: fmt.Sprintf("must be positive, got %g", c.ArrivalRate)}
	}
	if c.MaxAttempts > 16 {
		return &ConfigError{Field: "MaxAttempts",
			Reason: fmt.Sprintf("%d exceeds 16", c.MaxAttempts)}
	}
	if len(c.CacheModels) > 0 && c.EvalX == nil {
		return &ConfigError{Field: "CacheModels",
			Reason: "need EvalX to score cached results"}
	}
	if err := c.Budget.validate(); err != nil {
		return err
	}
	if err := c.Admission.validate(); err != nil {
		return err
	}
	if err := c.Autoscale.validate(c.Replicas); err != nil {
		return err
	}
	return c.Faults.Validate()
}

// fleetReq is one attempt's worth of request state; it travels by value
// through the queue and event closures, so the fleet stores no per-request
// ledger rows.
type fleetReq struct {
	id       int
	tenant   int
	key      int
	attempt  int
	first    float64 // original arrival (latency base)
	start    float64 // this attempt's arrival (deadline base)
	enqueued float64
}

// TenantStats is one tenant's aggregate outcome tallies.
type TenantStats struct {
	Arrived, Served, Shed, Failed int
	Availability                  float64 // Served / Arrived
}

// GoodputBucket is one fixed-width slot of the goodput timeline.
type GoodputBucket struct {
	StartS  float64
	Offered int // first-attempt arrivals in the bucket
	Served  int // requests whose serving completion landed in the bucket
}

// FleetResult summarises a fleet run without per-request records.
type FleetResult struct {
	Requests             int
	Served, Shed, Failed int
	Availability         float64
	P50S, P99S           float64 // latency of served requests (bucket upper bounds)

	Retries, RetriesDenied int
	CacheHits, CacheMisses int

	ScaleUpReplicas, ScaleDownReplicas int
	PeakReplicas, FinalReplicas        int

	Tenants []TenantStats

	BucketS  float64
	Buckets  []GoodputBucket
	VirtualS float64 // last finalization instant

	LedgerFP uint64
}

// rateOver averages a per-bucket count over the buckets fully inside
// [a, b), returning events per simulated second.
func (r FleetResult) rateOver(a, b float64, count func(GoodputBucket) int) float64 {
	total, n := 0, 0
	for _, bk := range r.Buckets {
		if bk.StartS >= a && bk.StartS+r.BucketS <= b {
			total += count(bk)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(total) / (float64(n) * r.BucketS)
}

// GoodputOver returns the mean served rate (req/s) over [a, b).
func (r FleetResult) GoodputOver(a, b float64) float64 {
	return r.rateOver(a, b, func(bk GoodputBucket) int { return bk.Served })
}

// OfferedOver returns the mean first-attempt arrival rate over [a, b).
func (r FleetResult) OfferedOver(a, b float64) float64 {
	return r.rateOver(a, b, func(bk GoodputBucket) int { return bk.Offered })
}

// RecoveredBy returns the start of the first bucket at or after t whose
// served rate reaches the target (req/s), or -1 if none does.
func (r FleetResult) RecoveredBy(t, target float64) float64 {
	for _, bk := range r.Buckets {
		if bk.StartS >= t && float64(bk.Served)/r.BucketS >= target {
			return bk.StartS
		}
	}
	return -1
}

// fleetLedger incrementally fingerprints every final request outcome with
// FNV-1a, so the ledger costs O(1) memory at any scale. Fingerprints are
// only ever compared between in-process runs, never persisted.
type fleetLedger struct {
	h       uint64
	started bool
}

func (l *fleetLedger) init() {
	if !l.started {
		l.h = 14695981039346656037 // FNV-1a 64-bit offset basis
		l.started = true
	}
}

func (l *fleetLedger) word(v uint64) {
	for i := 0; i < 8; i++ {
		l.h ^= v & 0xff
		l.h *= 1099511628211
		v >>= 8
	}
}

func (l *fleetLedger) fold(rq fleetReq, oc Outcome, finish float64) {
	l.init()
	l.word(uint64(rq.id))
	l.word(uint64(rq.tenant))
	l.word(uint64(rq.key))
	l.word(uint64(rq.attempt) | uint64(oc)<<8)
	l.word(math.Float64bits(rq.first))
	l.word(math.Float64bits(finish))
}

// fleetLatBuckets is the resolution of the fixed latency histogram:
// linear buckets over [0, 4*DeadlineS] plus overflow.
const fleetLatBuckets = 256

// Fleet runs the event-driven serving simulation. Build with NewFleet,
// drive with Run (standalone) or Start+Result (shared kernel).
type Fleet struct {
	cfg FleetConfig
	inj *fault.Injector
	k   *sim.Kernel

	// Three actors so the kernel log attributes every event: fleet-wl
	// (workload: arrivals and client retries), fleet-srv (replica
	// completions), fleet-scale (autoscaler decisions and activations).
	wl, srv *sim.Actor

	adm    *admitter
	budget *retryBudget
	cache  *resultCache
	scaler *autoscaler
	obs    *fleetObs

	weights []float64 // tenant traffic shares, sum 1
	quota   []int     // per-tenant first-attempt request counts
	keyPred []int     // cached result identity per key

	queue []fleetReq
	qHead int

	idle        []int
	active      int // live replicas (busy + idle)
	desired     int // autoscaler target (includes pending activations)
	nextReplica int
	inFlight    int

	nextID    int
	finalized int
	lastS     float64

	tenants                []TenantStats
	retries, retriesDenied int
	cacheHits, cacheMisses int
	scaleUpN, scaleDownN   int
	peakReplicas           int

	latHist  [fleetLatBuckets + 1]int
	latWidth float64
	buckets  []GoodputBucket
	ledger   fleetLedger

	perItemS float64 // amortized service per request at full batch

	started, finished bool
	res               FleetResult
}

// NewFleet validates the config and prepares a fleet. Like Server, a
// fleet is single-use: build a fresh one per run.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	k := cfg.Kernel
	if k == nil {
		k = sim.New()
	}
	h := cfg.Obs
	if h == nil {
		h = obs.NewHandle()
	}
	f := &Fleet{
		cfg:          cfg,
		inj:          fault.NewInjector(cfg.Faults),
		k:            k,
		wl:           k.Actor("fleet-wl"),
		srv:          k.Actor("fleet-srv"),
		obs:          newFleetObs(h, cfg.Tenants),
		active:       cfg.Replicas,
		desired:      cfg.Replicas,
		nextReplica:  cfg.Replicas,
		peakReplicas: cfg.Replicas,
		tenants:      make([]TenantStats, cfg.Tenants),
		latWidth:     4 * cfg.DeadlineS / fleetLatBuckets,
		perItemS:     (cfg.ServiceS + float64(cfg.BatchMax-1)*cfg.BatchItemS) / float64(cfg.BatchMax),
	}
	f.inj.SetClock(k)
	for i := cfg.Replicas - 1; i >= 0; i-- {
		f.idle = append(f.idle, i) // LIFO pop serves replica 0 first
	}

	// Zipf tenant entitlements: tenant i carries a share proportional to
	// 1/(i+1)^s. Quotas split Requests by entitlement, remainder to the
	// head tenants so the total is exact.
	f.weights = make([]float64, cfg.Tenants)
	z := 0.0
	for i := range f.weights {
		f.weights[i] = math.Pow(float64(i+1), -cfg.ZipfS)
		z += f.weights[i]
	}
	for i := range f.weights {
		f.weights[i] /= z
	}
	f.quota = make([]int, cfg.Tenants)
	assigned := 0
	for i, w := range f.weights {
		f.quota[i] = int(w * float64(cfg.Requests))
		assigned += f.quota[i]
	}
	for i := 0; assigned < cfg.Requests; i = (i + 1) % cfg.Tenants {
		f.quota[i]++
		assigned++
	}
	for i := range f.tenants {
		f.tenants[i].Arrived = f.quota[i]
	}

	drain := float64(cfg.Replicas) / f.perItemS
	f.adm = newAdmitter(cfg.Admission, cfg.DeadlineS, cfg.ServiceS, drain, f.weights)
	f.budget = newRetryBudget(cfg.Budget, cfg.Tenants)
	if !cfg.Cache.Disabled {
		f.cache = newResultCache(cfg.Cache, cfg.DeadlineS)
	}
	f.keyPred = keyPredictions(cfg.CacheModels, cfg.EvalX, cfg.Keys)
	f.scaler = newAutoscaler(cfg.Autoscale, f, k.Actor("fleet-scale"), f.obs.queueDelayEst)
	return f, nil
}

// keyPredictions scores the cache models over the eval matrix — batched
// through BatMul when they share a Dense+ReLU architecture — and maps
// every key to the prediction its serving model would produce. Without
// models the identity mapping stands in.
func keyPredictions(models []*nn.Network, evalX *tensor.Tensor, keys int) []int {
	out := make([]int, keys)
	if len(models) == 0 || evalX == nil {
		for k := range out {
			out[k] = k
		}
		return out
	}
	preds := make([][]int, len(models))
	batchable := len(models) >= 2
	for _, m := range models {
		if denseArch(m) == "" || (batchable && denseArch(m) != denseArch(models[0])) {
			batchable = false
		}
	}
	if batchable {
		preds = batchPredict(models, evalX)
	} else {
		for i, m := range models {
			preds[i] = m.Predict(evalX)
		}
	}
	rows := evalX.Dim(0)
	for k := range out {
		out[k] = preds[k%len(models)][k%rows]
	}
	return out
}

// Kernel returns the simulation kernel the fleet schedules on.
func (f *Fleet) Kernel() *sim.Kernel { return f.k }

// Run drives the standalone loop: schedule the workload, drain the
// kernel, summarise.
func (f *Fleet) Run() FleetResult {
	f.Start()
	f.k.Run()
	return f.Result()
}

// Start schedules the per-tenant arrival chains and the autoscaler on the
// kernel. With a shared Config.Kernel the fleet's events interleave with
// every other component on the same virtual timeline.
func (f *Fleet) Start() {
	if f.started {
		return
	}
	f.started = true
	f.obs.replicas.Set(float64(f.active))
	t0 := f.k.Now()
	for t := 0; t < f.cfg.Tenants; t++ {
		if f.quota[t] > 0 {
			f.scheduleArrival(t, 0, t0)
		}
	}
	f.scaler.start(t0)
}

// scheduleArrival books tenant t's request seq at a gap drawn from the
// tenant's own arrival stream; flash-crowd windows compress exactly the
// gaps falling inside them (per tenant, when the window lists Workers).
func (f *Fleet) scheduleArrival(tenant, seq int, from float64) {
	mean := 1 / (f.cfg.ArrivalRate * f.weights[tenant])
	f.wl.At(from+f.inj.ArrivalGapFor(tenant, seq, mean, from), func(stamp float64) {
		if seq+1 < f.quota[tenant] {
			f.scheduleArrival(tenant, seq+1, stamp)
		}
		id := f.nextID
		f.nextID++
		f.obs.arrived.Inc()
		f.obs.tenantArrived[tenant].Inc()
		f.bucketAt(stamp).Offered++
		f.handleAttempt(fleetReq{
			id: id, tenant: tenant, key: f.hotKey(tenant, seq),
			first: stamp, start: stamp,
		}, stamp)
	})
}

// mix64 is the splitmix64 finalizer, the same mixing primitive the fault
// package builds its hash streams from.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hotKey maps (tenant, seq) to a skewed key: a uniform hash draw pushed
// through u^skew concentrates mass on the low keys, the stand-in for the
// Zipf head of real serving traffic.
func (f *Fleet) hotKey(tenant, seq int) int {
	x := mix64(uint64(f.cfg.Seed)<<1 ^ uint64(tenant)<<40 ^ uint64(seq))
	u := float64(x>>11) / (1 << 53)
	k := int(float64(f.cfg.Keys) * math.Pow(u, f.cfg.KeySkew))
	if k >= f.cfg.Keys {
		k = f.cfg.Keys - 1
	}
	return k
}

// delayEst is the admission-time queue delay estimate: the backlog over
// the fleet's current drain rate.
func (f *Fleet) delayEst() float64 {
	return float64(f.queueLen()) * f.perItemS / float64(f.active)
}

func (f *Fleet) queueLen() int { return len(f.queue) - f.qHead }

// handleAttempt walks one attempt (fresh or retry) through the cache and
// the admission gate into the queue.
func (f *Fleet) handleAttempt(rq fleetReq, now float64) {
	if f.cache != nil {
		if _, ok := f.cache.get(rq.key, now); ok {
			f.cacheHits++
			f.obs.cacheHits.Inc()
			f.finishServed(rq, now)
			return
		}
		f.cacheMisses++
		f.obs.cacheMisses.Inc()
	}
	est := f.delayEst()
	f.obs.queueDelayEst.Set(est)
	if !f.adm.admit(rq.tenant, now, est, f.queueLen()) {
		f.failAttempt(rq, now, true)
		return
	}
	f.obs.admitted.Inc()
	rq.enqueued = now
	f.queue = append(f.queue, rq)
	f.adm.enqueued(rq.tenant)
	f.tryDispatch(now)
	f.obs.queueLen.Set(float64(f.queueLen()))
}

// tryDispatch pairs idle replicas with queued work: each replica takes up
// to BatchMax requests FIFO and schedules one completion event for the
// whole batch — the amortization that keeps the loop near two events per
// request. Brownout windows stretch the batch's service time.
func (f *Fleet) tryDispatch(now float64) {
	for len(f.idle) > 0 && f.queueLen() > 0 {
		r := f.idle[len(f.idle)-1]
		f.idle = f.idle[:len(f.idle)-1]
		n := f.cfg.BatchMax
		if ql := f.queueLen(); n > ql {
			n = ql
		}
		batch := make([]fleetReq, n)
		copy(batch, f.queue[f.qHead:f.qHead+n])
		f.qHead += n
		if f.qHead > 4096 && 2*f.qHead >= len(f.queue) {
			f.queue = append(f.queue[:0], f.queue[f.qHead:]...)
			f.qHead = 0
		}
		for _, rq := range batch {
			f.adm.dequeued(rq.tenant, now-rq.enqueued, now)
		}
		service := (f.cfg.ServiceS + float64(n-1)*f.cfg.BatchItemS) *
			f.inj.FactorAt(fault.KindBrownout, r, now)
		f.inFlight += n
		f.srv.At(now+service, func(stamp float64) { f.complete(r, batch, stamp) })
	}
}

// complete lands one replica batch: requests inside their attempt
// deadline are served, the rest are failures the client may retry —
// crucially, the replica spent full service time on them either way,
// which is the wasted work that sustains metastable collapse.
func (f *Fleet) complete(r int, batch []fleetReq, stamp float64) {
	f.inFlight -= len(batch)
	for _, rq := range batch {
		if stamp <= rq.start+f.cfg.DeadlineS {
			f.serveFromReplica(rq, stamp)
		} else {
			f.failAttempt(rq, stamp, false)
		}
	}
	if f.active > f.desired {
		// Autoscaler wants fewer replicas: retire instead of going idle.
		f.active--
		f.scaleDownN++
		f.obs.scaleDowns.Inc()
		f.obs.replicas.Set(float64(f.active))
		return
	}
	f.idle = append(f.idle, r)
	f.tryDispatch(stamp)
}

func (f *Fleet) serveFromReplica(rq fleetReq, stamp float64) {
	if f.cache != nil {
		f.cache.put(rq.key, f.keyPred[rq.key], stamp)
	}
	f.finishServed(rq, stamp)
}

// finishServed records a success (replica- or cache-served).
func (f *Fleet) finishServed(rq fleetReq, stamp float64) {
	f.budget.earn(rq.tenant)
	lat := stamp - rq.first
	li := int(lat / f.latWidth)
	if li > fleetLatBuckets {
		li = fleetLatBuckets
	}
	f.latHist[li]++
	f.tenants[rq.tenant].Served++
	f.obs.served.Inc()
	f.obs.tenantServed[rq.tenant].Inc()
	f.bucketAt(stamp).Served++
	f.ledger.fold(rq, Served, stamp)
	f.finalize(stamp)
}

// failAttempt handles a failed attempt (shed at admission or past its
// deadline at completion): retry if attempts and the tenant's retry
// budget allow, otherwise record the terminal outcome.
func (f *Fleet) failAttempt(rq fleetReq, now float64, shed bool) {
	if rq.attempt+1 < f.maxAttempts(rq.tenant, now) {
		if f.budget.allow(rq.tenant) {
			f.retries++
			f.obs.retries.Inc()
			next := rq
			next.attempt++
			f.wl.At(now+f.backoff(rq.tenant, rq.attempt, now), func(stamp float64) {
				next.start = stamp
				f.handleAttempt(next, stamp)
			})
			return
		}
		f.retriesDenied++
		f.obs.retriesDenied.Inc()
	}
	if shed {
		f.tenants[rq.tenant].Shed++
		f.obs.shed.Inc()
		f.obs.tenantShed[rq.tenant].Inc()
		f.ledger.fold(rq, Shed, now)
	} else {
		f.tenants[rq.tenant].Failed++
		f.obs.failed.Inc()
		f.obs.tenantFailed[rq.tenant].Inc()
		f.ledger.fold(rq, Failed, now)
	}
	f.finalize(now)
}

// maxAttempts is the client's attempt limit at time t: a retry-storm
// window multiplies the tenant's configured attempts (impatient clients
// retry more).
func (f *Fleet) maxAttempts(tenant int, t float64) int {
	if s := f.inj.FactorAt(fault.KindRetryStorm, tenant, t); s > 1 {
		return int(float64(f.cfg.MaxAttempts)*s + 0.5)
	}
	return f.cfg.MaxAttempts
}

// backoff is the client's wait before retry attempt+1: exponential from
// BackoffS, compressed by an active retry-storm window.
func (f *Fleet) backoff(tenant, attempt int, t float64) float64 {
	b := f.cfg.BackoffS * float64(int(1)<<attempt)
	if s := f.inj.FactorAt(fault.KindRetryStorm, tenant, t); s > 1 {
		b /= s
	}
	return b
}

func (f *Fleet) finalize(stamp float64) {
	f.finalized++
	if stamp > f.lastS {
		f.lastS = stamp
	}
}

// bucketAt returns the goodput-timeline bucket covering t, growing the
// timeline as the day advances.
func (f *Fleet) bucketAt(t float64) *GoodputBucket {
	i := int(t / f.cfg.BucketS)
	for len(f.buckets) <= i {
		f.buckets = append(f.buckets, GoodputBucket{StartS: float64(len(f.buckets)) * f.cfg.BucketS})
	}
	return &f.buckets[i]
}

// addReplicas brings n provisioned replicas online (autoscaler
// activation, after the provisioning lag).
func (f *Fleet) addReplicas(n int, stamp float64) {
	for j := 0; j < n; j++ {
		f.idle = append(f.idle, f.nextReplica)
		f.nextReplica++
	}
	f.active += n
	f.scaleUpN += n
	f.obs.scaleUps.Add(int64(n))
	if f.active > f.peakReplicas {
		f.peakReplicas = f.active
	}
	f.obs.replicas.Set(float64(f.active))
	f.tryDispatch(stamp)
}

// removeReplicas lowers the target by n: idle replicas retire now, busy
// ones as their current batch completes.
func (f *Fleet) removeReplicas(n int, _ float64) {
	f.desired -= n
	for len(f.idle) > 0 && f.active > f.desired {
		f.idle = f.idle[:len(f.idle)-1]
		f.active--
		f.scaleDownN++
		f.obs.scaleDowns.Inc()
	}
	f.obs.replicas.Set(float64(f.active))
}

// Result finalises and returns the run summary; call after the kernel has
// drained. Calling again returns the same result.
func (f *Fleet) Result() FleetResult {
	if f.finished {
		return f.res
	}
	f.finished = true
	r := FleetResult{
		Requests:          f.cfg.Requests,
		Retries:           f.retries,
		RetriesDenied:     f.retriesDenied,
		CacheHits:         f.cacheHits,
		CacheMisses:       f.cacheMisses,
		ScaleUpReplicas:   f.scaleUpN,
		ScaleDownReplicas: f.scaleDownN,
		PeakReplicas:      f.peakReplicas,
		FinalReplicas:     f.active,
		BucketS:           f.cfg.BucketS,
		Buckets:           f.buckets,
		VirtualS:          f.lastS,
		LedgerFP:          f.ledgerFingerprint(),
	}
	for i := range f.tenants {
		ts := f.tenants[i]
		if ts.Arrived > 0 {
			ts.Availability = float64(ts.Served) / float64(ts.Arrived)
		}
		r.Served += ts.Served
		r.Shed += ts.Shed
		r.Failed += ts.Failed
		r.Tenants = append(r.Tenants, ts)
	}
	r.Availability = float64(r.Served) / float64(r.Requests)
	r.P50S = f.latQuantile(0.5)
	r.P99S = f.latQuantile(0.99)
	f.res = r
	return r
}

// LedgerFingerprint exposes the running ledger hash (for replay checks
// on shared-kernel runs before Result is built).
func (f *Fleet) ledgerFingerprint() uint64 {
	f.ledger.init()
	return f.ledger.h
}

// latQuantile reads the q-quantile off the fixed latency histogram,
// reporting the bucket's upper edge.
func (f *Fleet) latQuantile(q float64) float64 {
	total := 0
	for _, c := range f.latHist {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	seen := 0
	for i, c := range f.latHist {
		seen += c
		if seen > rank {
			return float64(i+1) * f.latWidth
		}
	}
	return float64(fleetLatBuckets+1) * f.latWidth
}
