package serve

import (
	"dlsys/internal/obs"
)

// serveObs holds the pre-resolved instruments for one serving run. Counter
// names mirror the Result tallies one-to-one — experiment X8 asserts they
// reconcile exactly against the request ledger. Every field is a nil no-op
// for an un-instrumented run.
type serveObs struct {
	h *obs.Handle

	served, shed, failed           *obs.Counter
	hedgesLaunched, hedgeWins      *obs.Counter
	breakerOpened, breakerReclosed *obs.Counter

	tierServed  [numTiers]*obs.Counter
	tierLatency [numTiers]*obs.Histogram

	// Span names by outcome, pre-built so the per-request hot path does
	// not allocate.
	spanNames [3]string
}

// latencyBuckets spans sub-millisecond to multi-minute simulated request
// latencies across the device catalog.
var latencyBuckets = obs.ExpBuckets(1e-4, 4, 12)

func newServeObs(h *obs.Handle) *serveObs {
	o := &serveObs{
		h:               h,
		served:          h.Counter("serve.served"),
		shed:            h.Counter("serve.shed"),
		failed:          h.Counter("serve.failed"),
		hedgesLaunched:  h.Counter("serve.hedges_launched"),
		hedgeWins:       h.Counter("serve.hedge_wins"),
		breakerOpened:   h.Counter("serve.breaker_opened"),
		breakerReclosed: h.Counter("serve.breaker_reclosed"),
	}
	for t := TierFull; t < numTiers; t++ {
		if h != nil {
			o.tierServed[t] = h.Counter("serve.tier." + t.String() + ".served")
			o.tierLatency[t] = h.Histogram("serve.tier."+t.String()+".latency_seconds", latencyBuckets)
		}
	}
	for _, oc := range []Outcome{Served, Shed, Failed} {
		o.spanNames[oc] = "serve.request." + oc.String()
	}
	return o
}

// record folds one finished request into the metrics and emits its span —
// one per request, stamped [ArrivalS, FinishS] from the simulated clock,
// named by outcome so traces segment without span attributes.
func (o *serveObs) record(rec *RequestRecord) {
	switch rec.Outcome {
	case Served:
		o.served.Inc()
		o.tierServed[rec.Tier].Inc()
		o.tierLatency[rec.Tier].Observe(rec.LatencyS)
	case Shed:
		o.shed.Inc()
	case Failed:
		o.failed.Inc()
	}
	if rec.Hedged {
		o.hedgesLaunched.Inc()
	}
	if rec.HedgeWon {
		o.hedgeWins.Inc()
	}
	o.h.Emit(o.spanNames[rec.Outcome], rec.ArrivalS, rec.FinishS)
}
