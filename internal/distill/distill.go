// Package distill implements knowledge distillation (§2.1): transferring
// the function learned by a large teacher network into a smaller student by
// training the student against the teacher's temperature-softened output
// distribution (Hinton et al.), plus ensemble distillation and a
// FitNets-style hint loss on an intermediate representation.
package distill

import (
	"math/rand"

	"dlsys/internal/nn"
	"dlsys/internal/tensor"
)

// Config controls a distillation run.
type Config struct {
	// Alpha weighs the hard-label loss; (1-Alpha) weighs the soft
	// teacher-matching loss. Typical: 0.1-0.5.
	Alpha float64
	// T is the softmax temperature for the soft targets. Typical: 2-5.
	T         float64
	Epochs    int
	BatchSize int
	LR        float64
}

// Distill trains student to mimic teacher on inputs x with hard labels y
// (one-hot). The teacher is only used for inference. Returns training stats.
func Distill(rng *rand.Rand, teacher, student *nn.Network, x, y *tensor.Tensor, cfg Config) nn.TrainStats {
	// Precompute the teacher's soft targets once; the teacher is frozen.
	teacherLogits := teacher.Forward(x, false)
	teacherSoft := nn.SoftmaxTemperature(teacherLogits, cfg.T)

	loss := nn.NewDistillLoss(cfg.Alpha, cfg.T)
	opt := nn.NewAdam(cfg.LR)
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var stats nn.TrainStats
	flopsPerStep := 3 * student.FLOPs(bs)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			idx := perm[start:end]
			bx, by := nn.GatherBatch(x, y, idx)
			_, bsoft := nn.GatherBatch(x, teacherSoft, idx)
			student.ZeroGrad()
			logits := student.Forward(bx, true)
			l := loss.ForwardDistill(logits, by, bsoft)
			student.Backward(loss.Backward())
			opt.Step(student.Params())
			student.PostStep()
			epochLoss += l
			batches++
			stats.Steps++
			stats.FLOPs += flopsPerStep * int64(end-start) / int64(bs)
			stats.Examples += int64(end - start)
		}
		stats.EpochLoss = append(stats.EpochLoss, epochLoss/float64(batches))
	}
	return stats
}

// DistillEnsemble distills the averaged soft predictions of several teachers
// into one student — the "accelerate ensemble inference" use the tutorial
// cites. Teachers vote with equal weight.
func DistillEnsemble(rng *rand.Rand, teachers []*nn.Network, student *nn.Network, x, y *tensor.Tensor, cfg Config) nn.TrainStats {
	if len(teachers) == 0 {
		panic("distill: no teachers")
	}
	avg := nn.SoftmaxTemperature(teachers[0].Forward(x, false), cfg.T)
	for _, t := range teachers[1:] {
		avg.AddInPlace(nn.SoftmaxTemperature(t.Forward(x, false), cfg.T))
	}
	avg.ScaleInPlace(1 / float64(len(teachers)))
	return distillAgainstSoft(rng, student, x, y, avg, cfg)
}

// distillAgainstSoft trains student against precomputed soft targets.
func distillAgainstSoft(rng *rand.Rand, student *nn.Network, x, y, soft *tensor.Tensor, cfg Config) nn.TrainStats {
	loss := nn.NewDistillLoss(cfg.Alpha, cfg.T)
	opt := nn.NewAdam(cfg.LR)
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := rng.Perm(n)
	var stats nn.TrainStats
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		var epochLoss float64
		batches := 0
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			idx := perm[start:end]
			bx, by := nn.GatherBatch(x, y, idx)
			_, bsoft := nn.GatherBatch(x, soft, idx)
			student.ZeroGrad()
			logits := student.Forward(bx, true)
			l := loss.ForwardDistill(logits, by, bsoft)
			student.Backward(loss.Backward())
			opt.Step(student.Params())
			student.PostStep()
			epochLoss += l
			batches++
			stats.Steps++
		}
		stats.EpochLoss = append(stats.EpochLoss, epochLoss/float64(batches))
	}
	return stats
}

// HintConfig controls FitNets-style hint training: the student's hidden
// representation at StudentLayer is regressed (through a learned linear
// projection) onto the teacher's representation at TeacherLayer before the
// usual distillation stage.
type HintConfig struct {
	TeacherLayer int // index into teacher.Layers whose OUTPUT is the hint
	StudentLayer int // index into student.Layers whose OUTPUT is guided
	Epochs       int
	BatchSize    int
	LR           float64
}

// HintTrain pre-trains the student's lower layers to match the teacher's
// hint representation, returning the final regression loss. The projection
// maps the student width to the teacher width and is discarded afterwards.
func HintTrain(rng *rand.Rand, teacher, student *nn.Network, x *tensor.Tensor, cfg HintConfig) float64 {
	hint := forwardUpTo(teacher, x, cfg.TeacherLayer)
	guided := forwardUpTo(student, x, cfg.StudentLayer) // for width discovery
	proj := nn.NewDense(rng, "hint-proj", guided.Dim(1), hint.Dim(1))
	opt := nn.NewAdam(cfg.LR)
	mse := nn.NewMSE()
	n := x.Dim(0)
	bs := cfg.BatchSize
	if bs <= 0 || bs > n {
		bs = n
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	var last float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for start := 0; start < n; start += bs {
			end := start + bs
			if end > n {
				end = n
			}
			idx := perm[start:end]
			bx, bhint := nn.GatherBatch(x, hint, idx)
			student.ZeroGrad()
			proj.W.ZeroGrad()
			proj.B.ZeroGrad()
			// Forward through the guided prefix of the student.
			h := bx
			for li := 0; li <= cfg.StudentLayer; li++ {
				h = student.Layers[li].Forward(h, true)
			}
			p := proj.Forward(h, true)
			last = mse.Forward(p, bhint)
			dh := proj.Backward(mse.Backward())
			for li := cfg.StudentLayer; li >= 0; li-- {
				dh = student.Layers[li].Backward(dh)
			}
			params := append(student.Params(), proj.W, proj.B)
			opt.Step(params)
			student.PostStep()
		}
	}
	return last
}

// forwardUpTo runs x through layers [0, layer] in inference mode.
func forwardUpTo(net *nn.Network, x *tensor.Tensor, layer int) *tensor.Tensor {
	h := x
	for li := 0; li <= layer; li++ {
		h = net.Layers[li].Forward(h, false)
	}
	return h
}

// Agreement returns the fraction of examples on which two networks predict
// the same class — the surrogate-fidelity metric used by E27.
func Agreement(a, b *nn.Network, x *tensor.Tensor) float64 {
	pa := a.Predict(x)
	pb := b.Predict(x)
	same := 0
	for i := range pa {
		if pa[i] == pb[i] {
			same++
		}
	}
	return float64(same) / float64(len(pa))
}
