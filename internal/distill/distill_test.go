package distill

import (
	"math/rand"
	"testing"

	"dlsys/internal/data"
	"dlsys/internal/nn"
)

// hardDataset returns a dataset difficult enough that a tiny student
// benefits from the teacher's dark knowledge.
func hardDataset(seed int64) (train, test *data.Dataset) {
	rng := rand.New(rand.NewSource(seed))
	ds := data.GaussianMixture(rng, 900, 8, 4, 2.2)
	return ds.Split(rng, 0.8)
}

func trainTeacher(t *testing.T, train *data.Dataset) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(100))
	teacher := nn.NewMLP(rng, nn.MLPConfig{In: 8, Hidden: []int{64, 64}, Out: 4})
	tr := nn.NewTrainer(teacher, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
	tr.Fit(train.X, nn.OneHot(train.Labels, 4), nn.TrainConfig{Epochs: 40, BatchSize: 32})
	return teacher
}

func TestDistillationTransfersKnowledge(t *testing.T) {
	train, test := hardDataset(1)
	teacher := trainTeacher(t, train)
	tacc := teacher.Accuracy(test.X, test.Labels)

	student := nn.NewMLP(rand.New(rand.NewSource(7)), nn.MLPConfig{In: 8, Hidden: []int{8}, Out: 4})
	Distill(rand.New(rand.NewSource(8)), teacher, student, train.X, nn.OneHot(train.Labels, 4), Config{
		Alpha: 0.3, T: 3, Epochs: 40, BatchSize: 32, LR: 0.01,
	})
	sacc := student.Accuracy(test.X, test.Labels)
	if sacc < tacc-0.15 {
		t.Fatalf("student %.3f too far below teacher %.3f", sacc, tacc)
	}
	if sacc < 0.6 {
		t.Fatalf("student accuracy %.3f too low", sacc)
	}
}

func TestDistilledStudentBeatsScratchStudentOnAgreement(t *testing.T) {
	train, test := hardDataset(2)
	teacher := trainTeacher(t, train)

	cfg := nn.MLPConfig{In: 8, Hidden: []int{8}, Out: 4}
	distilled := nn.NewMLP(rand.New(rand.NewSource(10)), cfg)
	Distill(rand.New(rand.NewSource(11)), teacher, distilled, train.X, nn.OneHot(train.Labels, 4), Config{
		Alpha: 0.2, T: 3, Epochs: 40, BatchSize: 32, LR: 0.01,
	})

	scratch := nn.NewMLP(rand.New(rand.NewSource(10)), cfg) // same init as distilled
	str := nn.NewTrainer(scratch, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rand.New(rand.NewSource(12)))
	str.Fit(train.X, nn.OneHot(train.Labels, 4), nn.TrainConfig{Epochs: 40, BatchSize: 32})

	// The distilled student should mimic the teacher's function more
	// closely than an independently trained student of the same size.
	agDistilled := Agreement(teacher, distilled, test.X)
	agScratch := Agreement(teacher, scratch, test.X)
	if agDistilled <= agScratch {
		t.Fatalf("distilled agreement %.3f should beat scratch %.3f", agDistilled, agScratch)
	}
}

func TestDistillEnsembleCompressesCommittee(t *testing.T) {
	train, test := hardDataset(3)
	var teachers []*nn.Network
	for k := 0; k < 3; k++ {
		rng := rand.New(rand.NewSource(int64(200 + k)))
		teacher := nn.NewMLP(rng, nn.MLPConfig{In: 8, Hidden: []int{32}, Out: 4})
		tr := nn.NewTrainer(teacher, nn.NewSoftmaxCrossEntropy(), nn.NewAdam(0.01), rng)
		tr.Fit(train.X, nn.OneHot(train.Labels, 4), nn.TrainConfig{Epochs: 25, BatchSize: 32})
		teachers = append(teachers, teacher)
	}
	student := nn.NewMLP(rand.New(rand.NewSource(20)), nn.MLPConfig{In: 8, Hidden: []int{16}, Out: 4})
	DistillEnsemble(rand.New(rand.NewSource(21)), teachers, student, train.X, nn.OneHot(train.Labels, 4), Config{
		Alpha: 0.3, T: 3, Epochs: 40, BatchSize: 32, LR: 0.01,
	})
	if sacc := student.Accuracy(test.X, test.Labels); sacc < 0.6 {
		t.Fatalf("ensemble-distilled student accuracy %.3f", sacc)
	}
}

func TestHintTrainingReducesHintLoss(t *testing.T) {
	train, _ := hardDataset(4)
	teacher := trainTeacher(t, train)
	student := nn.NewMLP(rand.New(rand.NewSource(30)), nn.MLPConfig{In: 8, Hidden: []int{8, 8}, Out: 4})
	// Teacher layer 1 output = first ReLU (width 64); student layer 1 = first ReLU (width 8).
	cfg := HintConfig{TeacherLayer: 1, StudentLayer: 1, Epochs: 1, BatchSize: 32, LR: 0.01}
	first := HintTrain(rand.New(rand.NewSource(31)), teacher, student, train.X, cfg)
	cfg.Epochs = 15
	final := HintTrain(rand.New(rand.NewSource(32)), teacher, student, train.X, cfg)
	if final >= first {
		t.Fatalf("hint loss did not decrease: %g -> %g", first, final)
	}
}

func TestAgreementBounds(t *testing.T) {
	train, _ := hardDataset(5)
	teacher := trainTeacher(t, train)
	if ag := Agreement(teacher, teacher, train.X); ag != 1 {
		t.Fatalf("self agreement %g != 1", ag)
	}
}
