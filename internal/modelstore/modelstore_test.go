package modelstore

import (
	"math"
	"math/rand"
	"testing"

	"dlsys/internal/tensor"
)

// mustPut unwraps Put's error for the rank-2 tensors these tests store.
func mustPut(t *testing.T, s *Store, model, layer string, acts *tensor.Tensor) {
	t.Helper()
	if err := s.Put(model, layer, acts); err != nil {
		t.Fatal(err)
	}
}

func TestPutGetRoundTripWithinQuantError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := NewStore()
	acts := tensor.RandNormal(rng, 0, 1, 64, 32)
	mustPut(t, s, "m1", "relu0", acts)
	got, err := s.Get("m1", "relu0")
	if err != nil {
		t.Fatal(err)
	}
	bound, _ := s.MaxError("m1", "relu0")
	for i := range acts.Data {
		if math.Abs(acts.Data[i]-got.Data[i]) > bound+1e-12 {
			t.Fatalf("element %d error %g exceeds bound %g", i,
				math.Abs(acts.Data[i]-got.Data[i]), bound)
		}
	}
}

func TestGetMissingEntryErrors(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("nope", "layer"); err == nil {
		t.Fatal("expected error for missing entry")
	}
}

func TestGetRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewStore()
	acts := tensor.RandNormal(rng, 0, 1, 10, 4)
	mustPut(t, s, "m", "l", acts)
	sub, err := s.GetRows("m", "l", []int{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Dim(0) != 2 || sub.Dim(1) != 4 {
		t.Fatalf("shape %v", sub.Shape())
	}
	full, _ := s.Get("m", "l")
	for c := 0; c < 4; c++ {
		if sub.At(0, c) != full.At(3, c) || sub.At(1, c) != full.At(7, c) {
			t.Fatal("row slice mismatch")
		}
	}
	if _, err := s.GetRows("m", "l", []int{99}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestQuantizationAloneGivesLargeSavings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewStore()
	mustPut(t, s, "m", "l", tensor.RandNormal(rng, 0, 1, 256, 64))
	if s.CompressionRatio() < 5 {
		t.Fatalf("compression ratio %.2f < 5 without dedup", s.CompressionRatio())
	}
}

func TestDedupAcrossModelVersions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := NewStore()
	acts := tensor.RandNormal(rng, 0, 1, 128, 32)
	mustPut(t, s, "v1", "relu0", acts)
	afterFirst := s.StoredBytes()
	// Version 2's early-layer activations are identical (frozen layers) —
	// the dedup case Mistique exploits.
	mustPut(t, s, "v2", "relu0", acts.Clone())
	afterSecond := s.StoredBytes()
	extra := afterSecond - afterFirst
	// Only row references should be added, no new payload bytes.
	if extra > int64(acts.Dim(0))*8 {
		t.Fatalf("dedup failed: second put added %d bytes", extra)
	}
	if s.Entries() != 2 {
		t.Fatalf("entries %d", s.Entries())
	}
	// Both entries independently readable.
	a, _ := s.Get("v1", "relu0")
	b, _ := s.Get("v2", "relu0")
	if !tensor.Equal(a, b, 0) {
		t.Fatal("versions disagree after dedup")
	}
}

func TestPartialOverlapDedup(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewStore()
	acts := tensor.RandNormal(rng, 0, 1, 100, 16)
	mustPut(t, s, "v1", "l", acts)
	base := s.StoredBytes()
	// v2 shares the first 50 rows exactly; the rest differ.
	acts2 := acts.Clone()
	for i := 50 * 16; i < acts2.Size(); i++ {
		acts2.Data[i] += rng.NormFloat64()
	}
	mustPut(t, s, "v2", "l", acts2)
	extra := s.StoredBytes() - base
	fullCost := int64(100*(16+16)) + 100*8 // chunks (header+codes) + refs
	if extra >= fullCost {
		t.Fatalf("partial dedup saved nothing: extra %d vs full %d", extra, fullCost)
	}
}

func TestOverwriteSameKey(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := NewStore()
	a := tensor.RandNormal(rng, 0, 1, 8, 4)
	b := tensor.RandNormal(rng, 5, 1, 8, 4)
	mustPut(t, s, "m", "l", a)
	mustPut(t, s, "m", "l", b)
	got, _ := s.Get("m", "l")
	bound, _ := s.MaxError("m", "l")
	for i := range b.Data {
		if math.Abs(b.Data[i]-got.Data[i]) > bound+1e-12 {
			t.Fatal("overwrite did not take effect")
		}
	}
}

func TestPutRejectsNonMatrixActivations(t *testing.T) {
	s := NewStore()
	if err := s.Put("m", "l", tensor.New(8)); err == nil {
		t.Fatal("rank-1 tensor accepted")
	}
	if err := s.Put("m", "l", tensor.New(2, 3, 4)); err == nil {
		t.Fatal("rank-3 tensor accepted")
	}
	if s.Entries() != 0 {
		t.Fatalf("rejected puts must not create entries, have %d", s.Entries())
	}
}
