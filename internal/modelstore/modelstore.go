// Package modelstore implements a Mistique-style store for model
// intermediates (Part 3.2's "Frameworks and Systems"): layer activations
// from many model versions are quantized to 8 bits and deduplicated at
// row-chunk granularity, so diagnosing models by querying historical
// activations costs a fraction of naive float storage, with bounded
// reconstruction error.
//
// Each row is quantized independently with its own scale/zero embedded in
// the chunk payload, so identical rows produce identical chunks regardless
// of which tensor they arrived in — that is what makes deduplication work
// across model versions that share layers.
package modelstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"

	"dlsys/internal/tensor"
)

// Store holds quantized, deduplicated activation chunks addressed by
// (model, layer).
type Store struct {
	chunks  map[uint64][]byte // content-addressed chunk payloads
	entries map[string]*entry
	// accounting
	naiveBytes  int64
	storedBytes int64
}

type entry struct {
	shape     []int
	rows      int
	rowLen    int
	maxErr    float64
	chunkRefs []uint64 // one per row
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{chunks: map[uint64][]byte{}, entries: map[string]*entry{}}
}

func key(model, layer string) string { return model + "\x00" + layer }

const chunkHeader = 16 // scale + zero as float64 bits

// encodeRow quantizes one row to 8 bits with its own affine parameters and
// returns the self-describing payload: [scale|zero|codes...].
func encodeRow(row []float64) []byte {
	lo, hi := row[0], row[0]
	for _, v := range row[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	scale := (hi - lo) / 255
	if scale == 0 {
		scale = 1
	}
	payload := make([]byte, chunkHeader+len(row))
	binary.LittleEndian.PutUint64(payload[0:], math.Float64bits(scale))
	binary.LittleEndian.PutUint64(payload[8:], math.Float64bits(lo))
	for i, v := range row {
		c := math.Round((v - lo) / scale)
		if c < 0 {
			c = 0
		}
		if c > 255 {
			c = 255
		}
		payload[chunkHeader+i] = byte(c)
	}
	return payload
}

// decodeRow reconstructs a row into dst.
func decodeRow(payload []byte, dst []float64) {
	scale := math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
	zero := math.Float64frombits(binary.LittleEndian.Uint64(payload[8:]))
	for i := range dst {
		dst[i] = scale*float64(payload[chunkHeader+i]) + zero
	}
}

// Put stores a [rows, features] activation tensor for (model, layer),
// quantizing each row to 8 bits and deduplicating identical rows (within
// and across entries). Re-putting the same key overwrites. Tensors that are
// not rank 2 are a caller error, reported rather than panicking: activation
// shapes depend on runtime model wiring, so the store validates its inputs.
func (s *Store) Put(model, layer string, acts *tensor.Tensor) error {
	if acts.Rank() != 2 {
		return fmt.Errorf("modelstore: activations must be rank 2, got rank %d", acts.Rank())
	}
	rows, rowLen := acts.Dim(0), acts.Dim(1)
	e := &entry{shape: acts.Shape(), rows: rows, rowLen: rowLen}
	for r := 0; r < rows; r++ {
		payload := encodeRow(acts.Row(r))
		scale := math.Float64frombits(binary.LittleEndian.Uint64(payload[0:]))
		if half := scale / 2; half > e.maxErr {
			e.maxErr = half
		}
		h := hashChunk(payload)
		if _, ok := s.chunks[h]; !ok {
			s.chunks[h] = payload
			s.storedBytes += int64(len(payload))
		}
		e.chunkRefs = append(e.chunkRefs, h)
	}
	s.storedBytes += int64(rows) * 8 // refs
	s.naiveBytes += int64(acts.Size()) * 8
	s.entries[key(model, layer)] = e
	return nil
}

func hashChunk(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Get reconstructs the stored activations for (model, layer). Each value
// differs from the original by at most half its row's quantization step.
func (s *Store) Get(model, layer string) (*tensor.Tensor, error) {
	e, ok := s.entries[key(model, layer)]
	if !ok {
		return nil, fmt.Errorf("modelstore: no entry for model %q layer %q", model, layer)
	}
	out := tensor.New(e.shape...)
	for r := 0; r < e.rows; r++ {
		decodeRow(s.chunks[e.chunkRefs[r]], out.Data[r*e.rowLen:(r+1)*e.rowLen])
	}
	return out, nil
}

// GetRows reconstructs only the requested example rows — the "query model
// intermediates" access path that avoids materialising whole tensors.
func (s *Store) GetRows(model, layer string, rows []int) (*tensor.Tensor, error) {
	e, ok := s.entries[key(model, layer)]
	if !ok {
		return nil, fmt.Errorf("modelstore: no entry for model %q layer %q", model, layer)
	}
	out := tensor.New(len(rows), e.rowLen)
	for i, r := range rows {
		if r < 0 || r >= e.rows {
			return nil, fmt.Errorf("modelstore: row %d out of range [0,%d)", r, e.rows)
		}
		decodeRow(s.chunks[e.chunkRefs[r]], out.Data[i*e.rowLen:(i+1)*e.rowLen])
	}
	return out, nil
}

// Entries returns the number of stored (model, layer) entries.
func (s *Store) Entries() int { return len(s.entries) }

// NaiveBytes is what float64 storage of everything Put would have cost.
func (s *Store) NaiveBytes() int64 { return s.naiveBytes }

// StoredBytes is the actual quantized + deduplicated footprint.
func (s *Store) StoredBytes() int64 { return s.storedBytes }

// CompressionRatio is NaiveBytes / StoredBytes.
func (s *Store) CompressionRatio() float64 {
	if s.storedBytes == 0 {
		return 0
	}
	return float64(s.naiveBytes) / float64(s.storedBytes)
}

// MaxError returns the worst-case reconstruction error for (model, layer).
func (s *Store) MaxError(model, layer string) (float64, error) {
	e, ok := s.entries[key(model, layer)]
	if !ok {
		return 0, fmt.Errorf("modelstore: no entry for model %q layer %q", model, layer)
	}
	return e.maxErr, nil
}
