package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.count") != c {
		t.Fatal("same name must resolve to the same counter")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %g, want -1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	// SearchFloat64s puts v == bound into that bound's bucket, so the
	// buckets mean (-inf,1], (1,10], (10,100], (100,inf).
	want := []int64{2, 1, 1, 2}
	got := h.Buckets()
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("buckets = %v, want %v", got, want)
		}
	}
	if s := h.Sum(); s != 0.5+1+5+50+500+5000 {
		t.Fatalf("sum = %g", s)
	}
	if q := h.Quantile(0.5); q != 100 {
		t.Fatalf("p50 = %g, want bucket bound 100", q)
	}
	if q := h.Quantile(0.99); !math.IsInf(q, 1) {
		t.Fatalf("p99 = %g, want +Inf (overflow bucket)", q)
	}
	if h.Quantile(0) != 1 {
		t.Fatalf("p0 = %g, want 1", h.Quantile(0))
	}
	// Bounds are fixed at creation: re-resolving with different bounds
	// returns the original instrument.
	if h2 := r.Histogram("lat", []float64{7}); h2 != h || len(h2.Bounds()) != 3 {
		t.Fatal("histogram identity must include its original bounds")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-3, 10, 4)
	want := []float64{1e-3, 1e-2, 1e-1, 1}
	for i, w := range want {
		if math.Abs(b[i]-w) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}

// Nil instruments, registries, tracers, spans, and handles must all be
// no-ops — that is the contract letting subsystems instrument hot paths
// unconditionally.
func TestNilSafety(t *testing.T) {
	var h *Handle
	c := h.Counter("x")
	c.Inc()
	c.Add(3)
	if c.Value() != 0 {
		t.Fatal("nil counter must stay 0")
	}
	h.Gauge("g").Set(1)
	if h.Gauge("g").Value() != 0 {
		t.Fatal("nil gauge must stay 0")
	}
	hist := h.Histogram("h", []float64{1})
	hist.Observe(5)
	if hist.Count() != 0 || hist.Sum() != 0 || hist.Buckets() != nil || hist.Quantile(0.5) != 0 {
		t.Fatal("nil histogram must stay empty")
	}
	sp := h.Start("root", 0)
	sp.End(1)
	child := sp.Child("c", 0.5)
	child.End(0.9)
	var r *Registry
	if r.Counter("x") != nil || r.Snapshot() != nil || r.Fingerprint() != 0 {
		t.Fatal("nil registry must resolve nil instruments")
	}
	var tr *Tracer
	if tr.Start("x", 0) != nil || tr.Len() != 0 || tr.Spans() != nil {
		t.Fatal("nil tracer must be inert")
	}
	var m MemorySink
	if err := h.Flush(&m); err != nil {
		t.Fatalf("nil handle flush: %v", err)
	}
	if len(m.Exports) != 1 || m.Exports[0].Metrics != nil {
		t.Fatal("nil handle must flush an empty export")
	}
}

func TestTracerParentChildAndFingerprint(t *testing.T) {
	build := func() *Tracer {
		tr := NewTracer()
		root := tr.Start("round", 0)
		a := root.Child("compute", 0)
		a.End(1.5)
		b := root.Child("comm", 1.5)
		b.End(2)
		root.End(2)
		return tr
	}
	tr := build()
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	if spans[0].Parent != -1 || spans[1].Parent != 0 || spans[2].Parent != 0 {
		t.Fatalf("parents = %d,%d,%d", spans[0].Parent, spans[1].Parent, spans[2].Parent)
	}
	if spans[0].EndS != 2 || spans[1].EndS != 1.5 {
		t.Fatalf("ends = %g,%g", spans[0].EndS, spans[1].EndS)
	}
	if tr.Fingerprint() != build().Fingerprint() {
		t.Fatal("identical span sequences must fingerprint identically")
	}
	tr2 := build()
	tr2.Start("extra", 3).End(4)
	if tr.Fingerprint() == tr2.Fingerprint() {
		t.Fatal("different traces must fingerprint differently")
	}
}

func TestSnapshotDeterministicOrder(t *testing.T) {
	build := func(order []string) *Registry {
		r := NewRegistry()
		for _, n := range order {
			r.Counter(n).Inc()
		}
		r.Gauge("z.gauge").Set(3)
		r.Histogram("a.hist", []float64{1, 2}).Observe(1.5)
		return r
	}
	r1 := build([]string{"b", "a", "c"})
	r2 := build([]string{"c", "b", "a"})
	s1, s2 := r1.Snapshot(), r2.Snapshot()
	if len(s1) != 5 || len(s1) != len(s2) {
		t.Fatalf("snapshot sizes %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Kind != s2[i].Kind || s1[i].Count != s2[i].Count {
			t.Fatalf("snapshot order diverged at %d: %+v vs %+v", i, s1[i], s2[i])
		}
	}
	if r1.Fingerprint() != r2.Fingerprint() {
		t.Fatal("registration order must not change the fingerprint")
	}
	r2.Counter("a").Inc()
	if r1.Fingerprint() == r2.Fingerprint() {
		t.Fatal("different counts must change the fingerprint")
	}
}

// Concurrent writers hammering one registry must be race-free (run under
// -race) and must lose no updates.
func TestConcurrentWritersOneRegistry(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer()
	const goroutines = 16
	const perG = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Every goroutine resolves the shared instruments by name —
			// the registry's sharded maps take the contention — and a
			// private one, and records spans concurrently.
			shared := r.Counter("shared")
			hist := r.Histogram("hist", ExpBuckets(1, 2, 8))
			gauge := r.Gauge("gauge")
			private := r.Counter("private." + string(rune('a'+g)))
			for i := 0; i < perG; i++ {
				shared.Inc()
				private.Inc()
				hist.Observe(float64(i % 200))
				gauge.Set(float64(i))
				if i%500 == 0 {
					sp := tr.Start("work", float64(i))
					sp.Child("inner", float64(i)).End(float64(i) + 1)
					sp.End(float64(i) + 2)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != goroutines*perG {
		t.Fatalf("shared counter lost updates: %d, want %d", got, goroutines*perG)
	}
	h := r.Histogram("hist", nil)
	if h.Count() != goroutines*perG {
		t.Fatalf("histogram lost observations: %d", h.Count())
	}
	var bucketSum int64
	for _, b := range h.Buckets() {
		bucketSum += b
	}
	if bucketSum != h.Count() {
		t.Fatalf("bucket total %d != count %d", bucketSum, h.Count())
	}
	if got := tr.Len(); got != goroutines*(perG/500)*2 {
		t.Fatalf("tracer lost spans: %d", got)
	}
	for i, sp := range tr.Spans() {
		if sp.ID != i {
			t.Fatalf("span IDs must be dense and ordered, got %d at %d", sp.ID, i)
		}
	}
}

func TestJSONLSinkDeterministic(t *testing.T) {
	build := func() *Handle {
		h := NewHandle()
		h.Counter("req.served").Add(7)
		h.Histogram("req.lat", []float64{0.1, 1}).Observe(0.5)
		sp := h.Start("request", 1.25)
		sp.Child("attempt", 1.25).End(1.5)
		sp.End(1.5)
		return h
	}
	var b1, b2 bytes.Buffer
	if err := build().Flush(JSONLSink{W: &b1}); err != nil {
		t.Fatal(err)
	}
	if err := build().Flush(JSONLSink{W: &b2}); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("JSONL export not byte-identical:\n%s\nvs\n%s", b1.String(), b2.String())
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) != 4 { // 2 metrics + 2 spans
		t.Fatalf("got %d JSONL lines, want 4:\n%s", len(lines), b1.String())
	}
	if !strings.Contains(lines[0], `"type":"metric"`) || !strings.Contains(lines[3], `"type":"span"`) {
		t.Fatalf("unexpected line layout:\n%s", b1.String())
	}
}
