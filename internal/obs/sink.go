package obs

import (
	"encoding/json"
	"io"
)

// Export is one flushed observability payload: the registry's deterministic
// snapshot plus the tracer's span list.
type Export struct {
	Metrics []Point
	Spans   []SpanRecord
}

// Sink consumes exports. Implementations must not mutate the export.
type Sink interface {
	Export(Export) error
}

// Flush snapshots the handle's registry and tracer into the sink. A nil
// handle flushes an empty export.
func (h *Handle) Flush(s Sink) error {
	if h == nil {
		return s.Export(Export{})
	}
	return s.Export(Export{Metrics: h.Reg.Snapshot(), Spans: h.Tracer.Spans()})
}

// MemorySink retains every export in order — the test sink.
type MemorySink struct {
	Exports []Export
}

// Export implements Sink.
func (m *MemorySink) Export(e Export) error {
	m.Exports = append(m.Exports, e)
	return nil
}

// jsonlLine is the tagged union written per JSONL record.
type jsonlLine struct {
	Type   string      `json:"type"` // "metric" or "span"
	Metric *Point      `json:"metric,omitempty"`
	Span   *SpanRecord `json:"span,omitempty"`
}

// JSONLSink writes one JSON object per line: first every metric (sorted by
// kind then name, from the registry snapshot), then every span in ID order.
// The output is byte-deterministic for a deterministic export, so two
// same-seed runs of an instrumented scenario serialize identically.
type JSONLSink struct {
	W io.Writer
}

// Export implements Sink.
func (j JSONLSink) Export(e Export) error {
	enc := json.NewEncoder(j.W)
	for i := range e.Metrics {
		if err := enc.Encode(jsonlLine{Type: "metric", Metric: &e.Metrics[i]}); err != nil {
			return err
		}
	}
	for i := range e.Spans {
		if err := enc.Encode(jsonlLine{Type: "span", Span: &e.Spans[i]}); err != nil {
			return err
		}
	}
	return nil
}
