package obs

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sync"
)

// SpanRecord is one finished (or still-open, EndS < StartS) span as stored
// by the tracer. IDs are assigned in Start order, so a deterministic
// sequence of Start/Child/End calls produces a byte-identical record list.
type SpanRecord struct {
	ID     int     `json:"id"`
	Parent int     `json:"parent"` // -1 for a root span
	Name   string  `json:"name"`
	StartS float64 `json:"start_s"` // simulated seconds (or virtual steps)
	EndS   float64 `json:"end_s"`
}

// Tracer records parent/child spans stamped from the simulators' virtual
// clocks (device.SendTime accumulations, the serving loop's arrival clock,
// the guard's step index). It never reads wall-clock time, so a replayed
// same-seed scenario reproduces the identical trace — Fingerprint makes
// that assertable, like the guard ledger's replay contract. A nil *Tracer
// (and the nil *Span it hands out) is a valid no-op.
type Tracer struct {
	mu    sync.Mutex
	spans []SpanRecord
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is a live handle onto one tracer record.
type Span struct {
	tr  *Tracer
	idx int
}

func (t *Tracer) start(name string, parent int, startS float64) *Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := len(t.spans)
	t.spans = append(t.spans, SpanRecord{
		ID: idx, Parent: parent, Name: name, StartS: startS, EndS: startS - 1,
	})
	return &Span{tr: t, idx: idx}
}

// Start opens a root span at the given simulated time.
func (t *Tracer) Start(name string, startS float64) *Span {
	if t == nil {
		return nil
	}
	return t.start(name, -1, startS)
}

// Emit records an already-finished root span in one call — the cheap path
// for event-shaped spans (a served request, a rollback) whose end time is
// known when they are recorded: one lock, no live handle allocated.
func (t *Tracer) Emit(name string, startS, endS float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, SpanRecord{
		ID: len(t.spans), Parent: -1, Name: name, StartS: startS, EndS: endS,
	})
	t.mu.Unlock()
}

// Child opens a span parented under s at the given simulated time.
func (s *Span) Child(name string, startS float64) *Span {
	if s == nil {
		return nil
	}
	return s.tr.start(name, s.idx, startS)
}

// End closes the span at the given simulated time.
func (s *Span) End(endS float64) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.tr.spans[s.idx].EndS = endS
	s.tr.mu.Unlock()
}

// Len returns the number of recorded spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in ID order (nil on nil).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]SpanRecord(nil), t.spans...)
}

// Fingerprint hashes the full span sequence (IDs, parents, names, start and
// end stamps) with FNV-1a. Two same-seed runs of an instrumented scenario
// must produce equal fingerprints — the replay contract experiment X8
// asserts.
func (t *Tracer) Fingerprint() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range t.spans {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(s.ID)))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(s.Parent)))
		h.Write(buf[:])
		h.Write([]byte(s.Name))
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.StartS))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(s.EndS))
		h.Write(buf[:])
	}
	return h.Sum64()
}
