// Package obs is the uniform observability substrate for dlsys: a
// zero-external-dependency metrics registry (counters, gauges, fixed-bucket
// histograms) plus a tracer producing parent/child spans stamped from the
// simulators' virtual clocks. Everything is deterministic by construction —
// instruments are resolved by name once and updated from deterministic call
// sites, spans carry simulated (not wall-clock) timestamps, and both the
// registry and the tracer hash their full contents with FNV-1a so a replayed
// scenario can be asserted bit-identical, exactly like the guard's incident
// ledger.
//
// Instrumentation is opt-in and nil-safe end to end: a nil *Handle (or nil
// *Registry, *Tracer, *Counter, ...) turns every call into a cheap no-op
// branch, so un-instrumented hot paths pay near zero. The registry itself is
// safe for concurrent writers — names hash to sharded mutex-guarded maps and
// all updates are atomic — which the -race tests in this package hammer.
package obs

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// nameShards is the number of mutex-guarded name→instrument maps the
// registry spreads lookups over. Lookups happen once per instrument per
// run (callers keep the returned handle), so contention is negligible;
// sharding exists so that concurrent late lookups cannot serialise.
const nameShards = 16

// Counter is a monotonically increasing integer metric. The zero pointer is
// a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n may be any sign, but counters are conventionally monotone).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last stored value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-bound buckets. Bucket i
// counts observations <= Bounds[i]; one implicit overflow bucket counts the
// rest. Counts and the running sum are atomics, so concurrent observers are
// race-free; the sum is bit-deterministic whenever observations arrive in a
// deterministic order (the wiring rule every dlsys subsystem follows).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last = overflow
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Buckets returns the per-bucket counts, overflow last (nil on nil).
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Bounds returns the bucket upper bounds (nil on nil).
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Quantile returns the q-quantile estimated from the bucket counts: the
// upper bound of the first bucket at or past rank q (the overflow bucket
// reports +Inf). It returns 0 when the histogram is empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	rank := int64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// ExpBuckets returns n upper bounds starting at start and growing by
// factor: start, start*factor, ... — the standard latency-histogram shape.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Registry resolves metric names to instruments. A nil *Registry resolves
// every name to a nil (no-op) instrument, so callers never branch.
type Registry struct {
	shards [nameShards]shard
}

type shard struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

func (r *Registry) shard(name string) *shard {
	return &r.shards[nameHash(name)%nameShards]
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters == nil {
		s.counters = map[string]*Counter{}
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gauges == nil {
		s.gauges = map[string]*Gauge{}
	}
	g, ok := s.gauges[name]
	if !ok {
		g = &Gauge{}
		s.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. The bounds
// are fixed on first creation; later calls with different bounds get the
// original instrument (bounds are part of a metric's identity, not a
// per-call knob).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.shard(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.histograms == nil {
		s.histograms = map[string]*Histogram{}
	}
	h, ok := s.histograms[name]
	if !ok {
		h = &Histogram{
			bounds:  append([]float64(nil), bounds...),
			buckets: make([]atomic.Int64, len(bounds)+1),
		}
		s.histograms[name] = h
	}
	return h
}

// Point is one metric in a deterministic registry snapshot.
type Point struct {
	Name string `json:"name"`
	Kind string `json:"kind"` // "counter", "gauge", or "histogram"
	// Counter/histogram-count value.
	Count int64 `json:"count"`
	// Gauge value or histogram sum.
	Value float64 `json:"value,omitempty"`
	// Histogram detail (nil otherwise).
	Bounds  []float64 `json:"bounds,omitempty"`
	Buckets []int64   `json:"buckets,omitempty"`
}

// Snapshot returns every instrument's current state sorted by (kind, name),
// so two registries fed identical updates snapshot identically.
func (r *Registry) Snapshot() []Point {
	if r == nil {
		return nil
	}
	var pts []Point
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for name, c := range s.counters {
			pts = append(pts, Point{Name: name, Kind: "counter", Count: c.Value()})
		}
		for name, g := range s.gauges {
			pts = append(pts, Point{Name: name, Kind: "gauge", Value: g.Value()})
		}
		for name, h := range s.histograms {
			pts = append(pts, Point{
				Name: name, Kind: "histogram",
				Count: h.Count(), Value: h.Sum(),
				Bounds: h.Bounds(), Buckets: h.Buckets(),
			})
		}
		s.mu.Unlock()
	}
	sort.Slice(pts, func(a, b int) bool {
		if pts[a].Kind != pts[b].Kind {
			return pts[a].Kind < pts[b].Kind
		}
		return pts[a].Name < pts[b].Name
	})
	return pts
}

// Fingerprint hashes the sorted snapshot — names, kinds, counts, values,
// bounds, and bucket counts — with FNV-1a. Two same-seed runs of an
// instrumented scenario must produce equal fingerprints.
func (r *Registry) Fingerprint() uint64 {
	if r == nil {
		return 0
	}
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range r.Snapshot() {
		h.Write([]byte(p.Kind))
		h.Write([]byte(p.Name))
		binary.LittleEndian.PutUint64(buf[:], uint64(p.Count))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(p.Value))
		h.Write(buf[:])
		for _, b := range p.Bounds {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b))
			h.Write(buf[:])
		}
		for _, c := range p.Buckets {
			binary.LittleEndian.PutUint64(buf[:], uint64(c))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Handle bundles a Registry and a Tracer — the single field a subsystem
// config exposes to turn instrumentation on. A nil *Handle (the default)
// disables everything at near-zero cost.
type Handle struct {
	Reg    *Registry
	Tracer *Tracer
}

// NewHandle returns a handle with a fresh registry and tracer.
func NewHandle() *Handle {
	return &Handle{Reg: NewRegistry(), Tracer: NewTracer()}
}

// Counter resolves a counter (nil on a nil handle).
func (h *Handle) Counter(name string) *Counter {
	if h == nil {
		return nil
	}
	return h.Reg.Counter(name)
}

// Gauge resolves a gauge (nil on a nil handle).
func (h *Handle) Gauge(name string) *Gauge {
	if h == nil {
		return nil
	}
	return h.Reg.Gauge(name)
}

// Histogram resolves a histogram (nil on a nil handle).
func (h *Handle) Histogram(name string, bounds []float64) *Histogram {
	if h == nil {
		return nil
	}
	return h.Reg.Histogram(name, bounds)
}

// Start opens a root span at the given simulated time (nil on nil).
func (h *Handle) Start(name string, startS float64) *Span {
	if h == nil {
		return nil
	}
	return h.Tracer.Start(name, startS)
}

// Emit records an already-finished root span (no-op on a nil handle).
func (h *Handle) Emit(name string, startS, endS float64) {
	if h != nil {
		h.Tracer.Emit(name, startS, endS)
	}
}
