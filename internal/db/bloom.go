package db

import (
	"fmt"
	"math"
)

// Bloom is a classic Bloom filter over uint64 keys with k independent hash
// probes derived by double hashing.
type Bloom struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // number of probes
	count int
}

// NewBloom sizes a filter for n expected keys at the target false-positive
// rate using the standard formulas m = -n·lnp/(ln2)² and k = (m/n)·ln2.
// A typed error rejects a false-positive rate outside (0,1).
func NewBloom(n int, fpr float64) (*Bloom, error) {
	if n < 1 {
		n = 1
	}
	if fpr <= 0 || fpr >= 1 {
		return nil, &ArgError{Fn: "NewBloom", Reason: fmt.Sprintf("fpr %g outside (0,1)", fpr)}
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(fpr) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}, nil
}

// NewBloomBits builds a filter with an explicit bit budget and probe count,
// used when comparing against learned filters at a fixed memory budget.
func NewBloomBits(mBits uint64, k int) *Bloom {
	if mBits < 64 {
		mBits = 64
	}
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (mBits+63)/64), m: mBits, k: k}
}

// hash2 derives two independent 64-bit hashes from the key (splitmix64
// finalizers with different constants).
func hash2(key uint64) (uint64, uint64) {
	h1 := mix(key + 0x9E3779B97F4A7C15)
	h2 := mix(key ^ 0xBF58476D1CE4E5B9)
	if h2 == 0 {
		h2 = 0x94D049BB133111EB
	}
	return h1, h2
}

func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Add inserts a key.
func (b *Bloom) Add(key uint64) {
	h1, h2 := hash2(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.count++
}

// MayContain reports whether the key is possibly present (no false
// negatives; false positives at roughly the configured rate).
func (b *Bloom) MayContain(key uint64) bool {
	h1, h2 := hash2(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Bits returns the filter's bit budget.
func (b *Bloom) Bits() uint64 { return b.m }

// MemoryBytes returns the filter's resident size.
func (b *Bloom) MemoryBytes() int64 { return int64(len(b.bits))*8 + 24 }

// MeasuredFPR probes the filter with the given absent keys and returns the
// observed false-positive rate.
func (b *Bloom) MeasuredFPR(absent []uint64) float64 {
	if len(absent) == 0 {
		return 0
	}
	fp := 0
	for _, k := range absent {
		if b.MayContain(k) {
			fp++
		}
	}
	return float64(fp) / float64(len(absent))
}
