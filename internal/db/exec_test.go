package db

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func execTable(rng *rand.Rand, n int) *Table {
	t := NewTable("t", "a", "b", "v")
	for i := 0; i < n; i++ {
		t.Append(rng.Float64(), rng.Float64(), rng.NormFloat64())
	}
	return t
}

func TestVectorizedMatchesTupleAtATime(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := execTable(rng, 20000)
	preds := []Pred{{Col: "a", Lo: 0.2, Hi: 0.7}, {Col: "b", Lo: 0.1, Hi: 0.9}}
	for _, agg := range []Agg{AggCount, AggSum, AggMean, AggMin, AggMax, AggStd} {
		v := must(VectorizedQuery(tab, agg, "v", preds))
		u := must(TupleAtATimeQuery(tab, agg, "v", preds))
		if math.Abs(v-u) > 1e-9*math.Max(1, math.Abs(u)) {
			t.Fatalf("agg %d: vectorized %g != tuple %g", agg, v, u)
		}
	}
}

func TestVectorizedMatchesTableAggregate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := execTable(rng, 5000)
	preds := []Pred{{Col: "a", Lo: 0.3, Hi: 0.6}}
	for _, agg := range []Agg{AggCount, AggSum, AggMean, AggMin, AggMax} {
		v := must(VectorizedQuery(tab, agg, "v", preds))
		ref := must(tab.Aggregate(agg, "v", preds))
		if math.Abs(v-ref) > 1e-9*math.Max(1, math.Abs(ref)) {
			t.Fatalf("agg %d: vectorized %g != reference %g", agg, v, ref)
		}
	}
}

func TestVectorizedEmptyResult(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tab := execTable(rng, 1000)
	preds := []Pred{{Col: "a", Lo: 5, Hi: 6}} // matches nothing
	if got := must(VectorizedQuery(tab, AggCount, "v", preds)); got != 0 {
		t.Fatalf("count %g, want 0", got)
	}
	if got := must(VectorizedQuery(tab, AggMean, "v", preds)); got != 0 {
		t.Fatalf("mean of empty %g", got)
	}
}

func TestScanBatchBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Exactly 2.5 batches.
	tab := execTable(rng, batchSize*2+batchSize/2)
	scan := NewScan(tab)
	total := 0
	batches := 0
	for {
		b := scan.Next()
		if b == nil {
			break
		}
		total += len(b.rows)
		batches++
		if len(b.rows) > batchSize {
			t.Fatalf("batch too large: %d", len(b.rows))
		}
	}
	if total != tab.Rows() || batches != 3 {
		t.Fatalf("scan covered %d rows in %d batches", total, batches)
	}
}

func TestFilterSkipsEmptyBatches(t *testing.T) {
	// A table where only the last batch matches: Filter must keep pulling.
	tab := NewTable("t", "a", "v")
	n := batchSize*3 + 7
	for i := 0; i < n; i++ {
		a := 0.0
		if i >= batchSize*3 {
			a = 1.0
		}
		tab.Append(a, float64(i))
	}
	got := must(VectorizedQuery(tab, AggCount, "v", []Pred{{Col: "a", Lo: 0.5, Hi: 1.5}}))
	if got != 7 {
		t.Fatalf("count %g, want 7", got)
	}
}

// The vectorized engine should be measurably faster than tuple-at-a-time on
// a large scan. Timing tests are inherently flaky, so demand only a modest
// margin and use a generous workload.
func TestVectorizedFasterThanTupleAtATime(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	rng := rand.New(rand.NewSource(5))
	tab := execTable(rng, 400000)
	preds := []Pred{{Col: "a", Lo: 0.2, Hi: 0.8}, {Col: "b", Lo: 0.2, Hi: 0.8}}
	// Warm up.
	VectorizedQuery(tab, AggMean, "v", preds)
	TupleAtATimeQuery(tab, AggMean, "v", preds)

	start := time.Now()
	for i := 0; i < 5; i++ {
		VectorizedQuery(tab, AggMean, "v", preds)
	}
	vec := time.Since(start)
	start = time.Now()
	for i := 0; i < 5; i++ {
		TupleAtATimeQuery(tab, AggMean, "v", preds)
	}
	tuple := time.Since(start)
	t.Logf("vectorized %v vs tuple-at-a-time %v (%.2fx)", vec, tuple, float64(tuple)/float64(vec))
	if vec > tuple {
		t.Fatalf("vectorized (%v) slower than tuple-at-a-time (%v)", vec, tuple)
	}
}
