package db

import "math"

// Vectorized query execution. Part 1 of the tutorial draws an analogy
// between neural-network layers and query-processing operators, and its
// "Data Management Opportunities" calls out vectorized processing as a
// technique worth carrying across. This file implements both execution
// models over the column store — a tuple-at-a-time Volcano-style
// interpreter and a vector-at-a-time (batch) engine — so the ablation (A9)
// can measure the difference the tutorial alludes to.

// Batch is a unit of vectorized execution: a selection vector over table
// row ids plus the table it refers to.
type Batch struct {
	table *Table
	rows  []int
}

// batchSize is the vector width; 1024 amortises per-batch overhead while
// staying cache-resident.
const batchSize = 1024

// Operator is a pull-based vectorized operator: Next returns the next
// batch, or nil when exhausted.
type Operator interface {
	Next() *Batch
}

// ScanOp produces the table's rows in batches.
type ScanOp struct {
	table *Table
	pos   int
}

// NewScan creates a scan over t.
func NewScan(t *Table) *ScanOp { return &ScanOp{table: t} }

// Next implements Operator.
func (s *ScanOp) Next() *Batch {
	if s.pos >= s.table.Rows() {
		return nil
	}
	end := s.pos + batchSize
	if end > s.table.Rows() {
		end = s.table.Rows()
	}
	rows := make([]int, 0, end-s.pos)
	for r := s.pos; r < end; r++ {
		rows = append(rows, r)
	}
	s.pos = end
	return &Batch{table: s.table, rows: rows}
}

// FilterOp keeps rows satisfying all predicates, evaluated column-at-a-time
// over each batch (the vectorized inner loop: one column array, one
// predicate, tight loop, no per-tuple dispatch).
type FilterOp struct {
	input Operator
	preds []Pred
}

// NewFilter wraps input with a conjunctive predicate.
func NewFilter(input Operator, preds []Pred) *FilterOp {
	return &FilterOp{input: input, preds: preds}
}

// Next implements Operator.
func (f *FilterOp) Next() *Batch {
	for {
		b := f.input.Next()
		if b == nil {
			return nil
		}
		sel := b.rows
		for _, p := range f.preds {
			col := b.table.Column(p.Col)
			out := sel[:0]
			for _, r := range sel {
				v := col[r]
				if v >= p.Lo && v <= p.Hi {
					out = append(out, r)
				}
			}
			sel = out
			if len(sel) == 0 {
				break
			}
		}
		if len(sel) > 0 {
			return &Batch{table: b.table, rows: sel}
		}
		// Fully filtered batch: pull the next one.
	}
}

// AggOp fully consumes its input and computes one aggregate.
type AggOp struct {
	input Operator
	agg   Agg
	col   string
}

// NewAggregate creates the aggregation sink.
func NewAggregate(input Operator, agg Agg, col string) *AggOp {
	return &AggOp{input: input, agg: agg, col: col}
}

// Result runs the pipeline to completion.
func (a *AggOp) Result() float64 {
	var count float64
	var sum, sumsq float64
	min, max := 0.0, 0.0
	first := true
	for {
		b := a.input.Next()
		if b == nil {
			break
		}
		col := b.table.Column(a.col)
		for _, r := range b.rows {
			v := col[r]
			count++
			sum += v
			sumsq += v * v
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	switch a.agg {
	case AggCount:
		return count
	case AggSum:
		return sum
	case AggMean:
		if count == 0 {
			return 0
		}
		return sum / count
	case AggMin:
		return min
	case AggMax:
		return max
	case AggStd:
		if count == 0 {
			return 0
		}
		mean := sum / count
		v := sumsq/count - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
	panic("db: unknown aggregate")
}

// VectorizedQuery runs SELECT agg(col) FROM t WHERE preds through the
// batch engine.
func VectorizedQuery(t *Table, agg Agg, col string, preds []Pred) float64 {
	return NewAggregate(NewFilter(NewScan(t), preds), agg, col).Result()
}

// TupleAtATimeQuery is the Volcano-style baseline: every row flows through
// the full predicate stack individually with per-tuple column lookups —
// the per-tuple interpretation overhead vectorization removes.
func TupleAtATimeQuery(t *Table, agg Agg, col string, preds []Pred) float64 {
	var count, sum, sumsq float64
	min, max := 0.0, 0.0
	first := true
	for r := 0; r < t.Rows(); r++ {
		ok := true
		for _, p := range preds {
			// Per-tuple, per-predicate column resolution: the dispatch
			// cost the vectorized engine hoists out of the loop.
			v := t.Column(p.Col)[r]
			if v < p.Lo || v > p.Hi {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v := t.Column(col)[r]
		count++
		sum += v
		sumsq += v * v
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	}
	switch agg {
	case AggCount:
		return count
	case AggSum:
		return sum
	case AggMean:
		if count == 0 {
			return 0
		}
		return sum / count
	case AggMin:
		return min
	case AggMax:
		return max
	case AggStd:
		if count == 0 {
			return 0
		}
		mean := sum / count
		v := sumsq/count - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v)
	}
	panic("db: unknown aggregate")
}
