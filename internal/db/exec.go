package db

import "math"

// Vectorized query execution. Part 1 of the tutorial draws an analogy
// between neural-network layers and query-processing operators, and its
// "Data Management Opportunities" calls out vectorized processing as a
// technique worth carrying across. This file implements both execution
// models over the column store — a tuple-at-a-time Volcano-style
// interpreter and a vector-at-a-time (batch) engine — so the ablation (A9)
// can measure the difference the tutorial alludes to.

// Batch is a unit of vectorized execution: a selection vector over table
// row ids plus the table it refers to.
type Batch struct {
	table *Table
	rows  []int
}

// batchSize is the vector width; 1024 amortises per-batch overhead while
// staying cache-resident.
const batchSize = 1024

// Operator is a pull-based vectorized operator: Next returns the next
// batch, or nil when exhausted.
type Operator interface {
	Next() *Batch
}

// ScanOp produces the table's rows in batches.
type ScanOp struct {
	table *Table
	pos   int
}

// NewScan creates a scan over t.
func NewScan(t *Table) *ScanOp { return &ScanOp{table: t} }

// Next implements Operator.
func (s *ScanOp) Next() *Batch {
	if s.pos >= s.table.Rows() {
		return nil
	}
	end := s.pos + batchSize
	if end > s.table.Rows() {
		end = s.table.Rows()
	}
	rows := make([]int, 0, end-s.pos)
	for r := s.pos; r < end; r++ {
		rows = append(rows, r)
	}
	s.pos = end
	return &Batch{table: s.table, rows: rows}
}

// FilterOp keeps rows satisfying all predicates, evaluated column-at-a-time
// over each batch (the vectorized inner loop: one column array, one
// predicate, tight loop, no per-tuple dispatch).
type FilterOp struct {
	input Operator
	preds []Pred
}

// NewFilter wraps input with a conjunctive predicate.
func NewFilter(input Operator, preds []Pred) *FilterOp {
	return &FilterOp{input: input, preds: preds}
}

// Next implements Operator.
func (f *FilterOp) Next() *Batch {
	for {
		b := f.input.Next()
		if b == nil {
			return nil
		}
		sel := b.rows
		for _, p := range f.preds {
			// Predicate columns are validated by the query entry points
			// before the pipeline runs (see Matches).
			col := b.table.mustColumn(p.Col)
			out := sel[:0]
			for _, r := range sel {
				v := col[r]
				if v >= p.Lo && v <= p.Hi {
					out = append(out, r)
				}
			}
			sel = out
			if len(sel) == 0 {
				break
			}
		}
		if len(sel) > 0 {
			return &Batch{table: b.table, rows: sel}
		}
		// Fully filtered batch: pull the next one.
	}
}

// AggOp fully consumes its input and computes one aggregate.
type AggOp struct {
	input Operator
	agg   Agg
	col   string
}

// NewAggregate creates the aggregation sink.
func NewAggregate(input Operator, agg Agg, col string) *AggOp {
	return &AggOp{input: input, agg: agg, col: col}
}

// Result runs the pipeline to completion. The aggregate identifier and the
// target column are validated with typed errors.
func (a *AggOp) Result() (float64, error) {
	if err := checkAgg("Result", a.agg); err != nil {
		return 0, err
	}
	var count float64
	var sum, sumsq float64
	min, max := 0.0, 0.0
	first := true
	for {
		b := a.input.Next()
		if b == nil {
			break
		}
		col, err := b.table.Column(a.col)
		if err != nil {
			return 0, &ArgError{Fn: "Result", Reason: "unknown column " + a.col}
		}
		for _, r := range b.rows {
			v := col[r]
			count++
			sum += v
			sumsq += v * v
			if first || v < min {
				min = v
			}
			if first || v > max {
				max = v
			}
			first = false
		}
	}
	switch a.agg {
	case AggCount:
		return count, nil
	case AggSum:
		return sum, nil
	case AggMean:
		if count == 0 {
			return 0, nil
		}
		return sum / count, nil
	case AggMin:
		return min, nil
	case AggMax:
		return max, nil
	default: // AggStd; checkAgg rejected everything else
		if count == 0 {
			return 0, nil
		}
		mean := sum / count
		v := sumsq/count - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v), nil
	}
}

// VectorizedQuery runs SELECT agg(col) FROM t WHERE preds through the
// batch engine. The aggregate, target column, and predicate columns are
// validated up front with typed errors.
func VectorizedQuery(t *Table, agg Agg, col string, preds []Pred) (float64, error) {
	if err := checkQuery(t, "VectorizedQuery", agg, col, preds); err != nil {
		return 0, err
	}
	return NewAggregate(NewFilter(NewScan(t), preds), agg, col).Result()
}

// TupleAtATimeQuery is the Volcano-style baseline: every row flows through
// the full predicate stack individually with per-tuple column lookups —
// the per-tuple interpretation overhead vectorization removes. Arguments
// are validated once up front with typed errors; the per-row loop keeps
// the per-tuple column resolution that the vectorized engine hoists out.
func TupleAtATimeQuery(t *Table, agg Agg, col string, preds []Pred) (float64, error) {
	if err := checkQuery(t, "TupleAtATimeQuery", agg, col, preds); err != nil {
		return 0, err
	}
	var count, sum, sumsq float64
	min, max := 0.0, 0.0
	first := true
	for r := 0; r < t.Rows(); r++ {
		ok := true
		for _, p := range preds {
			// Per-tuple, per-predicate column resolution: the dispatch
			// cost the vectorized engine hoists out of the loop.
			v := t.mustColumn(p.Col)[r]
			if v < p.Lo || v > p.Hi {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		v := t.mustColumn(col)[r]
		count++
		sum += v
		sumsq += v * v
		if first || v < min {
			min = v
		}
		if first || v > max {
			max = v
		}
		first = false
	}
	switch agg {
	case AggCount:
		return count, nil
	case AggSum:
		return sum, nil
	case AggMean:
		if count == 0 {
			return 0, nil
		}
		return sum / count, nil
	case AggMin:
		return min, nil
	case AggMax:
		return max, nil
	default: // AggStd; checkQuery rejected everything else
		if count == 0 {
			return 0, nil
		}
		mean := sum / count
		v := sumsq/count - mean*mean
		if v < 0 {
			v = 0
		}
		return math.Sqrt(v), nil
	}
}
