package db

import (
	"errors"
	"testing"
)

// must unwraps (value, error) pairs whose arguments are valid by
// construction; a failure is a test bug, so it panics.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// wantArgErr asserts err is a *ArgError from the named entry point.
func wantArgErr(t *testing.T, err error, fn string) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected an error, got nil", fn)
	}
	var ae *ArgError
	if !errors.As(err, &ae) {
		t.Fatalf("%s: error %v is not a *ArgError", fn, err)
	}
	if ae.Fn != fn {
		t.Fatalf("ArgError names %q, want %q (err: %v)", ae.Fn, fn, err)
	}
}

func errTable() *Table {
	tab := NewTable("t", "a", "b")
	must(0, tab.Append(1, 2))
	must(0, tab.Append(3, 4))
	return tab
}

func TestTypedErrorsOnBadArguments(t *testing.T) {
	tab := errTable()
	badPred := []Pred{{Col: "ghost", Lo: 0, Hi: 1}}

	wantArgErr(t, tab.Append(1, 2, 3), "Append")
	if tab.Rows() != 2 {
		t.Fatalf("rejected Append still added a row: %d rows", tab.Rows())
	}
	_, err := tab.Column("ghost")
	wantArgErr(t, err, "Column")

	_, err = tab.Aggregate(AggMean, "ghost", nil)
	wantArgErr(t, err, "Aggregate")
	_, err = tab.Aggregate(Agg(99), "a", nil)
	wantArgErr(t, err, "Aggregate")
	_, err = tab.Aggregate(AggMean, "a", badPred)
	wantArgErr(t, err, "Aggregate")

	_, err = tab.GroupMeans("ghost", "a", 1)
	wantArgErr(t, err, "GroupMeans")
	_, err = tab.GroupMeans("a", "ghost", 1)
	wantArgErr(t, err, "GroupMeans")
	_, err = tab.ColumnQuantiles("ghost", 4)
	wantArgErr(t, err, "ColumnQuantiles")
}

func TestTypedErrorsFromConstructors(t *testing.T) {
	_, err := NewBloom(100, 0)
	wantArgErr(t, err, "NewBloom")
	_, err = NewBloom(100, 1)
	wantArgErr(t, err, "NewBloom")

	_, err = NewEquiWidth(nil, 8)
	wantArgErr(t, err, "NewEquiWidth")
	_, err = NewEquiWidth([]float64{1, 2}, 0)
	wantArgErr(t, err, "NewEquiWidth")
	_, err = NewEquiDepth(nil, 8)
	wantArgErr(t, err, "NewEquiDepth")

	_, err = NewIndependentEstimator(NewTable("empty", "x"), 8)
	wantArgErr(t, err, "NewIndependentEstimator")

	_, err = NewCanopy(errTable(), 0)
	wantArgErr(t, err, "NewCanopy")
}

func TestTypedErrorsFromQueryEngines(t *testing.T) {
	tab := errTable()
	badPred := []Pred{{Col: "ghost", Lo: 0, Hi: 1}}

	_, err := VectorizedQuery(tab, AggMean, "ghost", nil)
	wantArgErr(t, err, "VectorizedQuery")
	_, err = VectorizedQuery(tab, Agg(-1), "a", nil)
	wantArgErr(t, err, "VectorizedQuery")
	_, err = VectorizedQuery(tab, AggMean, "a", badPred)
	wantArgErr(t, err, "VectorizedQuery")

	_, err = TupleAtATimeQuery(tab, AggMean, "ghost", nil)
	wantArgErr(t, err, "TupleAtATimeQuery")
	_, err = TupleAtATimeQuery(tab, AggMean, "a", badPred)
	wantArgErr(t, err, "TupleAtATimeQuery")

	_, err = NewAggregate(NewScan(tab), AggMean, "ghost").Result()
	wantArgErr(t, err, "Result")

	est := must(NewIndependentEstimator(tab, 4))
	_, err = est.Estimate(badPred)
	wantArgErr(t, err, "Estimate")
}
