package db

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeInsertLookup(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 1000; i++ {
		bt.Insert(uint64(i*7), i)
	}
	if bt.Len() != 1000 {
		t.Fatalf("len %d", bt.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := bt.Lookup(uint64(i * 7))
		if !ok || v != i {
			t.Fatalf("lookup %d: got %d,%v", i*7, v, ok)
		}
	}
	if _, ok := bt.Lookup(3); ok {
		t.Fatal("found absent key")
	}
}

func TestBTreeOverwrite(t *testing.T) {
	bt := NewBTree()
	bt.Insert(42, 1)
	bt.Insert(42, 2)
	if bt.Len() != 1 {
		t.Fatalf("len %d after overwrite", bt.Len())
	}
	if v, _ := bt.Lookup(42); v != 2 {
		t.Fatalf("overwrite lost: %d", v)
	}
}

// Property: B-tree agrees with a sorted-map oracle under random operations.
func TestBTreeOracleQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		bt := NewBTree()
		oracle := map[uint64]int{}
		for i, op := range ops {
			key := uint64(op % 512)
			bt.Insert(key, i)
			oracle[key] = i
		}
		if bt.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := bt.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeRangeScanOrderedComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bt := NewBTree()
	keys := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(10000))
		bt.Insert(k, int(k))
		keys[k] = true
	}
	var want []uint64
	for k := range keys {
		if k >= 2000 && k <= 7000 {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	var got []uint64
	bt.RangeScan(2000, 7000, func(k uint64, v int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan order mismatch at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestBTreeRangeScanEarlyStop(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100; i++ {
		bt.Insert(uint64(i), i)
	}
	calls := 0
	bt.RangeScan(0, 99, func(k uint64, v int) bool {
		calls++
		return calls < 5
	})
	if calls != 5 {
		t.Fatalf("early stop failed: %d calls", calls)
	}
}

func TestBTreeDepthLogarithmic(t *testing.T) {
	bt := NewBTree()
	for i := 0; i < 100000; i++ {
		bt.Insert(uint64(i), i)
	}
	if d := bt.Depth(); d > 5 {
		t.Fatalf("depth %d too large for 100k keys at order 64", d)
	}
	if bt.MemoryBytes() <= 0 {
		t.Fatal("memory accounting broken")
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := must(NewBloom(10000, 0.01))
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = rng.Uint64()
		b.Add(keys[i])
	}
	for _, k := range keys {
		if !b.MayContain(k) {
			t.Fatalf("false negative for %d", k)
		}
	}
}

func TestBloomFPRNearTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, target := range []float64{0.1, 0.01} {
		b := must(NewBloom(5000, target))
		present := map[uint64]bool{}
		for i := 0; i < 5000; i++ {
			k := rng.Uint64() >> 1
			b.Add(k)
			present[k] = true
		}
		absent := make([]uint64, 0, 20000)
		for len(absent) < 20000 {
			k := rng.Uint64() >> 1
			if !present[k] {
				absent = append(absent, k)
			}
		}
		got := b.MeasuredFPR(absent)
		if got > target*2.5 {
			t.Fatalf("target %g: measured FPR %g too high", target, got)
		}
	}
}

func TestBloomSmallerBudgetHigherFPR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	keys := make([]uint64, 4000)
	present := map[uint64]bool{}
	for i := range keys {
		keys[i] = rng.Uint64()
		present[keys[i]] = true
	}
	absent := make([]uint64, 0, 10000)
	for len(absent) < 10000 {
		k := rng.Uint64()
		if !present[k] {
			absent = append(absent, k)
		}
	}
	big := NewBloomBits(64000, 7)
	small := NewBloomBits(16000, 3)
	for _, k := range keys {
		big.Add(k)
		small.Add(k)
	}
	if big.MeasuredFPR(absent) >= small.MeasuredFPR(absent) {
		t.Fatal("more bits should mean fewer false positives")
	}
}

func makeTable(rng *rand.Rand, n int) *Table {
	t := NewTable("t", "a", "b", "c")
	for i := 0; i < n; i++ {
		a := rng.Float64()
		t.Append(a, a+0.1*rng.NormFloat64(), rng.Float64())
	}
	return t
}

func TestTableScanAndAggregates(t *testing.T) {
	tab := NewTable("emp", "age", "salary")
	tab.Append(30, 100)
	tab.Append(40, 200)
	tab.Append(50, 300)
	if tab.Rows() != 3 {
		t.Fatal("rows")
	}
	preds := []Pred{{Col: "age", Lo: 35, Hi: 55}}
	if got := tab.Count(preds); got != 2 {
		t.Fatalf("count %d", got)
	}
	if got := must(tab.Aggregate(AggMean, "salary", preds)); got != 250 {
		t.Fatalf("mean %g", got)
	}
	if got := must(tab.Aggregate(AggSum, "salary", nil)); got != 600 {
		t.Fatalf("sum %g", got)
	}
	if got := must(tab.Aggregate(AggMax, "salary", nil)); got != 300 {
		t.Fatalf("max %g", got)
	}
	if got := tab.Selectivity(preds); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("selectivity %g", got)
	}
}

func TestGroupMeans(t *testing.T) {
	tab := NewTable("t", "g", "v")
	tab.Append(0.1, 10)
	tab.Append(0.2, 20)
	tab.Append(1.4, 40)
	m := must(tab.GroupMeans("g", "v", 1.0))
	if m[0] != 15 || m[1] != 40 {
		t.Fatalf("group means %v", m)
	}
}

func TestHistogramEstimatesUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = rng.Float64()
	}
	for _, h := range []*Histogram{must(NewEquiWidth(vals, 32)), must(NewEquiDepth(vals, 32))} {
		got := h.EstimateRange(0.2, 0.5)
		if math.Abs(got-0.3) > 0.02 {
			t.Fatalf("estimate %g, want ~0.3", got)
		}
		if h.EstimateRange(2, 3) > 0.001 {
			t.Fatal("out-of-range should be ~0")
		}
		if e := h.EstimateRange(-10, 10); math.Abs(e-1) > 1e-9 {
			t.Fatalf("full range estimate %g", e)
		}
	}
}

func TestEquiDepthBeatsEquiWidthOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// Heavy skew: 95% of mass in [0, 0.01].
	vals := make([]float64, 20000)
	for i := range vals {
		if rng.Float64() < 0.95 {
			vals[i] = rng.Float64() * 0.01
		} else {
			vals[i] = rng.Float64()
		}
	}
	truth := func(lo, hi float64) float64 {
		c := 0
		for _, v := range vals {
			if v >= lo && v <= hi {
				c++
			}
		}
		return float64(c) / float64(len(vals))
	}
	ew := must(NewEquiWidth(vals, 16))
	ed := must(NewEquiDepth(vals, 16))
	lo, hi := 0.0, 0.004
	tw := truth(lo, hi)
	qw := QError(ew.EstimateRange(lo, hi), tw)
	qd := QError(ed.EstimateRange(lo, hi), tw)
	if qd >= qw {
		t.Fatalf("equi-depth q-error %g should beat equi-width %g on skew", qd, qw)
	}
}

func TestIndependentEstimatorErrsOnCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := makeTable(rng, 20000) // b ≈ a: strong correlation
	est := must(NewIndependentEstimator(tab, 32))
	preds := []Pred{{Col: "a", Lo: 0.4, Hi: 0.6}, {Col: "b", Lo: 0.4, Hi: 0.6}}
	truth := tab.Selectivity(preds)
	guess := must(est.Estimate(preds))
	// AVI predicts ~0.04 but the truth is ~0.17: at least 2x off.
	if QError(guess, truth) < 2 {
		t.Fatalf("expected the independence assumption to fail: est %g vs truth %g", guess, truth)
	}
	// On the independent column, it should be accurate.
	solo := []Pred{{Col: "c", Lo: 0.2, Hi: 0.5}}
	if QError(must(est.Estimate(solo)), tab.Selectivity(solo)) > 1.2 {
		t.Fatal("single-attribute estimate should be accurate")
	}
}

func TestQError(t *testing.T) {
	if QError(10, 10) != 1 {
		t.Fatal("perfect estimate should score 1")
	}
	if QError(1, 10) != 10 || QError(10, 1) != 10 {
		t.Fatal("q-error should be symmetric")
	}
}

func TestJoinGraphDPOptimalBeatsOrMatchesGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(4)
		card := make([]float64, n)
		for i := range card {
			card[i] = math.Floor(100 + rng.Float64()*100000)
		}
		g := NewJoinGraph(card)
		// Star schema: relation 0 is the fact table.
		for i := 1; i < n; i++ {
			g.SetSel(0, i, 1/card[i])
		}
		_, dpCost := g.DPOptimal()
		_, greedyCost := g.GreedyOrder()
		if dpCost > greedyCost*(1+1e-9) {
			t.Fatalf("DP cost %g worse than greedy %g", dpCost, greedyCost)
		}
	}
}

func TestJoinPlanCostHandComputed(t *testing.T) {
	g := NewJoinGraph([]float64{1000, 10, 100})
	g.SetSel(0, 1, 0.01)
	g.SetSel(0, 2, 0.001)
	// Order [1,0,2]: intermediates: |1⋈0| = 10*1000*0.01 = 100;
	// |1⋈0⋈2| = 10*1000*100*0.01*0.001 = 10. Cost = 110.
	if got := g.PlanCost([]int{1, 0, 2}); math.Abs(got-110) > 1e-9 {
		t.Fatalf("plan cost %g, want 110", got)
	}
}

func TestDPOptimalIsExhaustiveOptimalSmall(t *testing.T) {
	g := NewJoinGraph([]float64{500, 2000, 50, 800})
	g.SetSel(0, 1, 0.001)
	g.SetSel(1, 2, 0.01)
	g.SetSel(2, 3, 0.005)
	_, dpCost := g.DPOptimal()
	// Exhaustive over all 24 permutations.
	best := math.Inf(1)
	perm := []int{0, 1, 2, 3}
	var rec func(k int)
	rec = func(k int) {
		if k == 4 {
			if c := g.PlanCost(perm); c < best {
				best = c
			}
			return
		}
		for i := k; i < 4; i++ {
			perm[k], perm[i] = perm[i], perm[k]
			rec(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	rec(0)
	if math.Abs(dpCost-best) > 1e-6*best {
		t.Fatalf("DP cost %g != exhaustive optimum %g", dpCost, best)
	}
}
