package db

import (
	"fmt"
	"math"
	"sort"
)

// Table is a minimal in-memory column store: named float64 columns of equal
// length. It supports predicate scans, aggregation, and group-by — enough
// substrate for selectivity estimation, RL-driven exploration, and knob
// tuning experiments.
type Table struct {
	Name    string
	colIdx  map[string]int
	names   []string
	columns [][]float64
	rows    int
}

// NewTable creates an empty table with the given column names.
func NewTable(name string, cols ...string) *Table {
	t := &Table{Name: name, colIdx: make(map[string]int, len(cols))}
	for i, c := range cols {
		t.colIdx[c] = i
		t.names = append(t.names, c)
		t.columns = append(t.columns, nil)
	}
	return t
}

// Columns returns the column names in declaration order.
func (t *Table) Columns() []string { return t.names }

// Rows returns the row count.
func (t *Table) Rows() int { return t.rows }

// Append adds one row; a typed error rejects rows whose value count does
// not match the column count (and the row is not added).
func (t *Table) Append(values ...float64) error {
	if len(values) != len(t.columns) {
		return &ArgError{Fn: "Append", Reason: fmt.Sprintf("row width %d != %d columns", len(values), len(t.columns))}
	}
	for i, v := range values {
		t.columns[i] = append(t.columns[i], v)
	}
	t.rows++
	return nil
}

// Column returns the raw column slice (shared, do not mutate), or a typed
// error for an unknown column name.
func (t *Table) Column(name string) ([]float64, error) {
	i, ok := t.colIdx[name]
	if !ok {
		return nil, &ArgError{Fn: "Column", Reason: "unknown column " + name}
	}
	return t.columns[i], nil
}

// mustColumn is the internal accessor for call sites whose column names
// were already validated at the public entry point (or come from Columns()
// itself). Reaching the panic means a validation bug inside this package,
// not bad caller input.
func (t *Table) mustColumn(name string) []float64 {
	i, ok := t.colIdx[name]
	if !ok {
		panic("db: internal: column " + name + " not validated by entry point")
	}
	return t.columns[i]
}

// Pred is a range predicate on one column: Lo ≤ value ≤ Hi.
type Pred struct {
	Col    string
	Lo, Hi float64
}

// Matches reports whether row r satisfies every predicate. Predicates must
// name existing columns — the query entry points validate them before the
// per-row loops run.
func (t *Table) Matches(r int, preds []Pred) bool {
	for _, p := range preds {
		v := t.mustColumn(p.Col)[r]
		if v < p.Lo || v > p.Hi {
			return false
		}
	}
	return true
}

// Count returns the number of rows matching all predicates (a full scan —
// the exact answer estimators are judged against).
func (t *Table) Count(preds []Pred) int {
	n := 0
	for r := 0; r < t.rows; r++ {
		if t.Matches(r, preds) {
			n++
		}
	}
	return n
}

// Selectivity returns Count/Rows.
func (t *Table) Selectivity(preds []Pred) float64 {
	if t.rows == 0 {
		return 0
	}
	return float64(t.Count(preds)) / float64(t.rows)
}

// Agg is an aggregate function identifier.
type Agg int

// Aggregates supported by Aggregate.
const (
	AggCount Agg = iota
	AggSum
	AggMean
	AggMin
	AggMax
	AggStd
)

// Aggregate computes the aggregate of col over rows matching preds. The
// aggregate identifier, target column (except for AggCount), and every
// predicate column are validated up front with typed errors.
func (t *Table) Aggregate(agg Agg, col string, preds []Pred) (float64, error) {
	if err := checkAgg("Aggregate", agg); err != nil {
		return 0, err
	}
	if err := t.checkPreds("Aggregate", preds); err != nil {
		return 0, err
	}
	var vals []float64
	var c []float64
	if agg != AggCount {
		var err error
		if c, err = t.Column(col); err != nil {
			return 0, &ArgError{Fn: "Aggregate", Reason: "unknown column " + col}
		}
	}
	for r := 0; r < t.rows; r++ {
		if t.Matches(r, preds) {
			if agg == AggCount {
				vals = append(vals, 1)
			} else {
				vals = append(vals, c[r])
			}
		}
	}
	if len(vals) == 0 {
		return 0, nil
	}
	switch agg {
	case AggCount:
		return float64(len(vals)), nil
	case AggSum:
		return sum(vals), nil
	case AggMean:
		return sum(vals) / float64(len(vals)), nil
	case AggMin:
		m := vals[0]
		for _, v := range vals[1:] {
			if v < m {
				m = v
			}
		}
		return m, nil
	case AggMax:
		m := vals[0]
		for _, v := range vals[1:] {
			if v > m {
				m = v
			}
		}
		return m, nil
	default: // AggStd; checkAgg rejected everything else
		mu := sum(vals) / float64(len(vals))
		var s float64
		for _, v := range vals {
			s += (v - mu) * (v - mu)
		}
		return math.Sqrt(s / float64(len(vals))), nil
	}
}

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// GroupMeans returns, for each distinct rounded value of groupCol, the mean
// of valCol over matching rows — the "view" primitive the exploration agent
// inspects. Group keys are rounded to buckets of the given width.
func (t *Table) GroupMeans(groupCol, valCol string, bucket float64) (map[float64]float64, error) {
	g, err := t.Column(groupCol)
	if err != nil {
		return nil, &ArgError{Fn: "GroupMeans", Reason: "unknown column " + groupCol}
	}
	v, err := t.Column(valCol)
	if err != nil {
		return nil, &ArgError{Fn: "GroupMeans", Reason: "unknown column " + valCol}
	}
	sums := map[float64]float64{}
	counts := map[float64]int{}
	for r := 0; r < t.rows; r++ {
		key := math.Floor(g[r]/bucket) * bucket
		sums[key] += v[r]
		counts[key]++
	}
	out := make(map[float64]float64, len(sums))
	for k, s := range sums {
		out[k] = s / float64(counts[k])
	}
	return out, nil
}

// ColumnQuantiles returns the q evenly-spaced quantiles of a column
// (including min and max), used to build equi-depth histograms and to
// normalise features.
func (t *Table) ColumnQuantiles(col string, q int) ([]float64, error) {
	c, err := t.Column(col)
	if err != nil {
		return nil, &ArgError{Fn: "ColumnQuantiles", Reason: "unknown column " + col}
	}
	vals := append([]float64(nil), c...)
	sort.Float64s(vals)
	if len(vals) == 0 {
		return nil, nil
	}
	out := make([]float64, q+1)
	for i := 0; i <= q; i++ {
		idx := i * (len(vals) - 1) / q
		out[i] = vals[idx]
	}
	return out, nil
}
