package db

import "math"

// JoinGraph describes a join-ordering problem: n relations with base
// cardinalities and pairwise join selectivities (1 where no join predicate
// links a pair — a cross product).
type JoinGraph struct {
	Card []float64   // base cardinality of each relation
	Sel  [][]float64 // Sel[i][j] = join selectivity between i and j
}

// NewJoinGraph creates a graph with all pairwise selectivities set to 1.
func NewJoinGraph(card []float64) *JoinGraph {
	n := len(card)
	sel := make([][]float64, n)
	for i := range sel {
		sel[i] = make([]float64, n)
		for j := range sel[i] {
			sel[i][j] = 1
		}
	}
	return &JoinGraph{Card: append([]float64(nil), card...), Sel: sel}
}

// SetSel sets the join selectivity between relations i and j (symmetric).
func (g *JoinGraph) SetSel(i, j int, s float64) {
	g.Sel[i][j] = s
	g.Sel[j][i] = s
}

// N returns the relation count.
func (g *JoinGraph) N() int { return len(g.Card) }

// ResultSize returns the cardinality of joining the given set of relations
// (product of base cardinalities times all intra-set selectivities).
func (g *JoinGraph) ResultSize(set []int) float64 {
	size := 1.0
	for _, r := range set {
		size *= g.Card[r]
	}
	for a := 0; a < len(set); a++ {
		for b := a + 1; b < len(set); b++ {
			size *= g.Sel[set[a]][set[b]]
		}
	}
	return size
}

// PlanCost is the classical C_out cost of a left-deep join order: the sum
// of all intermediate result sizes.
func (g *JoinGraph) PlanCost(order []int) float64 {
	if len(order) < 2 {
		return 0
	}
	var cost float64
	for k := 2; k <= len(order); k++ {
		cost += g.ResultSize(order[:k])
	}
	return cost
}

// DPOptimal finds the minimum-cost left-deep join order by dynamic
// programming over relation subsets (Selinger). Exponential in n; fine for
// n ≤ ~16.
func (g *JoinGraph) DPOptimal() (order []int, cost float64) {
	n := g.N()
	type entry struct {
		cost float64
		last int
		prev uint32
	}
	dp := make(map[uint32]entry, 1<<n)
	for i := 0; i < n; i++ {
		dp[1<<i] = entry{cost: 0, last: i, prev: 0}
	}
	setSize := func(mask uint32) float64 {
		var set []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				set = append(set, i)
			}
		}
		return g.ResultSize(set)
	}
	for mask := uint32(1); mask < 1<<n; mask++ {
		if _, ok := dp[mask]; !ok && popcount(mask) == 1 {
			continue
		}
		cur, ok := dp[mask]
		if !ok {
			continue
		}
		for j := 0; j < n; j++ {
			bit := uint32(1) << j
			if mask&bit != 0 {
				continue
			}
			next := mask | bit
			c := cur.cost + setSize(next)
			if e, ok := dp[next]; !ok || c < e.cost {
				dp[next] = entry{cost: c, last: j, prev: mask}
			}
		}
	}
	full := uint32(1<<n) - 1
	e := dp[full]
	// Reconstruct.
	order = make([]int, 0, n)
	mask := full
	for mask != 0 {
		ee := dp[mask]
		order = append(order, ee.last)
		mask = ee.prev
	}
	// Reverse into join order.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order, e.cost
}

func popcount(x uint32) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// GreedyOrder builds a left-deep order by repeatedly appending the relation
// that minimises the next intermediate size — the cheap heuristic learned
// cost models are compared against.
func (g *JoinGraph) GreedyOrder() (order []int, cost float64) {
	n := g.N()
	used := make([]bool, n)
	// Start from the smallest relation.
	best := 0
	for i := 1; i < n; i++ {
		if g.Card[i] < g.Card[best] {
			best = i
		}
	}
	order = []int{best}
	used[best] = true
	for len(order) < n {
		bestJ, bestSize := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if used[j] {
				continue
			}
			size := g.ResultSize(append(append([]int(nil), order...), j))
			if size < bestSize {
				bestSize, bestJ = size, j
			}
		}
		order = append(order, bestJ)
		used[bestJ] = true
	}
	return order, g.PlanCost(order)
}
