package db

import "fmt"

// ArgError is a typed argument-validation failure from a db entry point:
// which function was called, and why its arguments cannot run. Public
// constructors and query entry points return it instead of panicking, so
// callers composing queries from user input (the natural-language layer,
// exploration agents) can reject bad requests gracefully.
type ArgError struct {
	Fn     string
	Reason string
}

func (e *ArgError) Error() string {
	return fmt.Sprintf("db: %s: %s", e.Fn, e.Reason)
}

// checkPreds validates that every predicate names an existing column.
func (t *Table) checkPreds(fn string, preds []Pred) error {
	for _, p := range preds {
		if _, ok := t.colIdx[p.Col]; !ok {
			return &ArgError{Fn: fn, Reason: "unknown column " + p.Col}
		}
	}
	return nil
}

// checkAgg validates the aggregate identifier.
func checkAgg(fn string, agg Agg) error {
	if agg < AggCount || agg > AggStd {
		return &ArgError{Fn: fn, Reason: fmt.Sprintf("unknown aggregate %d", int(agg))}
	}
	return nil
}

// checkHistInput validates histogram-constructor arguments.
func checkHistInput(fn string, values []float64, buckets int) error {
	if len(values) == 0 {
		return &ArgError{Fn: fn, Reason: "empty input"}
	}
	if buckets < 1 {
		return &ArgError{Fn: fn, Reason: fmt.Sprintf("buckets %d < 1", buckets)}
	}
	return nil
}

// checkQuery validates a full SELECT agg(col) WHERE preds argument set.
func checkQuery(t *Table, fn string, agg Agg, col string, preds []Pred) error {
	if err := checkAgg(fn, agg); err != nil {
		return err
	}
	if _, ok := t.colIdx[col]; !ok {
		return &ArgError{Fn: fn, Reason: "unknown column " + col}
	}
	return t.checkPreds(fn, preds)
}
