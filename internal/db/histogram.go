package db

import "sort"

// Histogram is a one-dimensional bucketed frequency summary supporting
// range-selectivity estimation with intra-bucket uniformity assumption —
// the classical estimator the learned estimator (E15) competes with.
type Histogram struct {
	Bounds []float64 // len = buckets+1, ascending
	Counts []int     // len = buckets
	total  int
}

// NewEquiWidth builds a histogram with equally wide buckets over the data's
// range. A typed error rejects empty input or a non-positive bucket count.
func NewEquiWidth(values []float64, buckets int) (*Histogram, error) {
	if err := checkHistInput("NewEquiWidth", values, buckets); err != nil {
		return nil, err
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	h := &Histogram{Bounds: make([]float64, buckets+1), Counts: make([]int, buckets), total: len(values)}
	for i := 0; i <= buckets; i++ {
		h.Bounds[i] = lo + (hi-lo)*float64(i)/float64(buckets)
	}
	for _, v := range values {
		b := int(float64(buckets) * (v - lo) / (hi - lo))
		if b == buckets {
			b--
		}
		h.Counts[b]++
	}
	return h, nil
}

// NewEquiDepth builds a histogram whose buckets hold (approximately) equal
// numbers of values, which adapts bucket width to skew. A typed error
// rejects empty input or a non-positive bucket count.
func NewEquiDepth(values []float64, buckets int) (*Histogram, error) {
	if err := checkHistInput("NewEquiDepth", values, buckets); err != nil {
		return nil, err
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	h := &Histogram{total: len(values)}
	h.Bounds = append(h.Bounds, sorted[0])
	per := len(sorted) / buckets
	if per < 1 {
		per = 1
	}
	for i := 1; i < buckets; i++ {
		idx := i * per
		if idx >= len(sorted) {
			break
		}
		// Skip duplicate boundaries to keep Bounds strictly ascending.
		if sorted[idx] > h.Bounds[len(h.Bounds)-1] {
			h.Bounds = append(h.Bounds, sorted[idx])
		}
	}
	h.Bounds = append(h.Bounds, sorted[len(sorted)-1])
	h.Counts = make([]int, len(h.Bounds)-1)
	for _, v := range values {
		h.Counts[h.bucketOf(v)]++
	}
	return h, nil
}

func (h *Histogram) bucketOf(v float64) int {
	// Find the last bound ≤ v.
	i := sort.SearchFloat64s(h.Bounds, v)
	if i >= len(h.Counts)+1 {
		return len(h.Counts) - 1
	}
	if i > 0 && (i == len(h.Bounds) || h.Bounds[i] != v) {
		i--
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// EstimateRange returns the estimated fraction of values in [lo, hi],
// assuming uniformity within buckets.
func (h *Histogram) EstimateRange(lo, hi float64) float64 {
	if hi < lo || h.total == 0 {
		return 0
	}
	var est float64
	for b := 0; b < len(h.Counts); b++ {
		bLo, bHi := h.Bounds[b], h.Bounds[b+1]
		if bHi < lo || bLo > hi {
			continue
		}
		overlapLo := bLo
		if lo > overlapLo {
			overlapLo = lo
		}
		overlapHi := bHi
		if hi < overlapHi {
			overlapHi = hi
		}
		width := bHi - bLo
		frac := 1.0
		if width > 0 {
			frac = (overlapHi - overlapLo) / width
		}
		if frac < 0 {
			frac = 0
		}
		est += frac * float64(h.Counts[b])
	}
	return est / float64(h.total)
}

// IndependentEstimator estimates conjunctive multi-attribute selectivities
// as the product of per-attribute histogram estimates — the attribute-value
// independence (AVI) assumption whose failure on correlated data motivates
// learned estimators.
type IndependentEstimator struct {
	Hists map[string]*Histogram
}

// NewIndependentEstimator builds per-column equi-depth histograms. A typed
// error rejects an empty table or non-positive bucket count.
func NewIndependentEstimator(t *Table, buckets int) (*IndependentEstimator, error) {
	e := &IndependentEstimator{Hists: map[string]*Histogram{}}
	for _, c := range t.Columns() {
		h, err := NewEquiDepth(t.mustColumn(c), buckets)
		if err != nil {
			return nil, &ArgError{Fn: "NewIndependentEstimator", Reason: "column " + c + ": " + err.(*ArgError).Reason}
		}
		e.Hists[c] = h
	}
	return e, nil
}

// Estimate returns the estimated selectivity of the conjunction, or a typed
// error when a predicate names a column with no histogram.
func (e *IndependentEstimator) Estimate(preds []Pred) (float64, error) {
	sel := 1.0
	for _, p := range preds {
		h, ok := e.Hists[p.Col]
		if !ok {
			return 0, &ArgError{Fn: "Estimate", Reason: "no histogram for column " + p.Col}
		}
		sel *= h.EstimateRange(p.Lo, p.Hi)
	}
	return sel, nil
}

// QError is the standard cardinality-estimation error metric:
// max(est, true)/min(est, true), with both floored to avoid division by
// zero. Perfect estimates score 1.
func QError(estimate, truth float64) float64 {
	const floor = 1e-6
	if estimate < floor {
		estimate = floor
	}
	if truth < floor {
		truth = floor
	}
	if estimate > truth {
		return estimate / truth
	}
	return truth / estimate
}
