// Package db implements the in-memory database substrate that Part 2 of
// the tutorial's learned components enhance or replace: a column store with
// typed columns and predicate scans, a B-tree index, a Bloom filter,
// equi-width/equi-depth histograms with independence-assumption selectivity
// estimation, and a Selinger-style dynamic-programming join-order
// optimizer. Everything is exact and deterministic so learned counterparts
// can be benchmarked against trustworthy baselines.
package db

import "sort"

// btreeOrder is the maximum number of keys per node. 64 keeps nodes around
// a cache line multiple and trees shallow.
const btreeOrder = 64

// BTree maps uint64 keys to integer positions (e.g. row ids). It is a
// classic in-memory B-tree supporting insert, point lookup, and range scan.
type BTree struct {
	root  *btreeNode
	count int
}

type btreeNode struct {
	keys     []uint64
	values   []int // leaf only
	children []*btreeNode
	leaf     bool
}

// NewBTree returns an empty tree.
func NewBTree() *BTree {
	return &BTree{root: &btreeNode{leaf: true}}
}

// BulkLoadBTree builds a tree from sorted keys with values 0..n-1 (each
// key's value is its position), the layout learned indexes compete with.
func BulkLoadBTree(sortedKeys []uint64) *BTree {
	t := NewBTree()
	for i, k := range sortedKeys {
		t.Insert(k, i)
	}
	return t
}

// Len returns the number of stored keys.
func (t *BTree) Len() int { return t.count }

// Insert adds or overwrites key → value.
func (t *BTree) Insert(key uint64, value int) {
	if len(t.root.keys) == btreeOrder {
		old := t.root
		t.root = &btreeNode{children: []*btreeNode{old}}
		t.root.splitChild(0)
	}
	if t.root.insert(key, value) {
		t.count++
	}
}

// insert returns true if a new key was added (false on overwrite).
func (n *btreeNode) insert(key uint64, value int) bool {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if n.leaf {
		if i < len(n.keys) && n.keys[i] == key {
			n.values[i] = value
			return false
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.values = append(n.values, 0)
		copy(n.values[i+1:], n.values[i:])
		n.values[i] = value
		return true
	}
	if i < len(n.keys) && n.keys[i] == key {
		i++ // equal separator: key lives in the right child
	}
	if len(n.children[i].keys) == btreeOrder {
		n.splitChild(i)
		if key > n.keys[i] {
			i++
		} else if key == n.keys[i] {
			i++
		}
	}
	return n.children[i].insert(key, value)
}

// splitChild splits the full child at index i, hoisting its median key.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	mid := len(child.keys) / 2
	midKey := child.keys[mid]
	right := &btreeNode{leaf: child.leaf}
	if child.leaf {
		// Leaves keep the median key in the right node so every key stays
		// in a leaf (B+-tree style values-at-leaves).
		right.keys = append(right.keys, child.keys[mid:]...)
		right.values = append(right.values, child.values[mid:]...)
		child.keys = child.keys[:mid]
		child.values = child.values[:mid]
		// Separator is the first key of the right leaf; searches for it go
		// right because insert/lookup treat equal separators as "go right".
		midKey = right.keys[0]
	} else {
		right.keys = append(right.keys, child.keys[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.keys = child.keys[:mid]
		child.children = child.children[:mid+1]
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = midKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Lookup returns the value for key and whether it exists.
func (t *BTree) Lookup(key uint64) (int, bool) {
	n := t.root
	for {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if n.leaf {
			if i < len(n.keys) && n.keys[i] == key {
				return n.values[i], true
			}
			return 0, false
		}
		if i < len(n.keys) && n.keys[i] == key {
			i++
		}
		n = n.children[i]
	}
}

// RangeScan calls fn for every key in [lo, hi] in ascending order, stopping
// early if fn returns false.
func (t *BTree) RangeScan(lo, hi uint64, fn func(key uint64, value int) bool) {
	t.root.rangeScan(lo, hi, fn)
}

func (n *btreeNode) rangeScan(lo, hi uint64, fn func(uint64, int) bool) bool {
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= lo })
	if n.leaf {
		for ; i < len(n.keys) && n.keys[i] <= hi; i++ {
			if !fn(n.keys[i], n.values[i]) {
				return false
			}
		}
		return true
	}
	if i < len(n.keys) && n.keys[i] == lo {
		i++
	}
	for ; ; i++ {
		if !n.children[i].rangeScan(lo, hi, fn) {
			return false
		}
		if i >= len(n.keys) || n.keys[i] > hi {
			return true
		}
	}
}

// RangeCount returns how many keys lie in [lo, hi] — the aggregate form of
// RangeScan that index-maintenance monitoring wants without paying for a
// callback per key.
func (t *BTree) RangeCount(lo, hi uint64) int {
	n := 0
	t.RangeScan(lo, hi, func(uint64, int) bool { n++; return true })
	return n
}

// MemoryBytes estimates the tree's resident size: keys (8 B), values (8 B
// at leaves), child pointers (8 B), and a per-node header.
func (t *BTree) MemoryBytes() int64 {
	var walk func(n *btreeNode) int64
	walk = func(n *btreeNode) int64 {
		b := int64(len(n.keys))*8 + int64(len(n.values))*8 + int64(len(n.children))*8 + 48
		for _, c := range n.children {
			b += walk(c)
		}
		return b
	}
	return walk(t.root)
}

// Depth returns the tree height (1 for a single leaf).
func (t *BTree) Depth() int {
	d := 1
	for n := t.root; !n.leaf; n = n.children[0] {
		d++
	}
	return d
}
