package db

import (
	"math"
	"math/rand"
	"testing"
)

func canopyTable(rng *rand.Rand, n int) *Table {
	t := NewTable("t", "x", "y")
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		t.Append(x, 0.8*x+0.2*rng.NormFloat64())
	}
	return t
}

func naiveStats(t *Table, col string, lo, hi int) (mean, std, min, max float64) {
	data := must(t.Column(col))
	if hi > len(data) {
		hi = len(data)
	}
	var sum, sumSq, n float64
	min, max = math.Inf(1), math.Inf(-1)
	for r := lo; r < hi; r++ {
		v := data[r]
		sum += v
		sumSq += v * v
		n++
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean = sum / n
	std = math.Sqrt(sumSq/n - mean*mean)
	return
}

func TestCanopyMatchesNaiveStats(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := canopyTable(rng, 10000)
	c := must(NewCanopy(tab, 128))
	for trial := 0; trial < 50; trial++ {
		lo := rng.Intn(9000)
		hi := lo + 1 + rng.Intn(1000)
		wm, ws, wmin, wmax := naiveStats(tab, "x", lo, hi)
		if got := c.Mean("x", lo, hi); math.Abs(got-wm) > 1e-9 {
			t.Fatalf("mean[%d,%d) = %g, want %g", lo, hi, got, wm)
		}
		if got := c.Std("x", lo, hi); math.Abs(got-ws) > 1e-9 {
			t.Fatalf("std[%d,%d) = %g, want %g", lo, hi, got, ws)
		}
		if got := c.Min("x", lo, hi); got != wmin {
			t.Fatalf("min mismatch")
		}
		if got := c.Max("x", lo, hi); got != wmax {
			t.Fatalf("max mismatch")
		}
	}
}

func TestCanopyCorrelation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tab := canopyTable(rng, 20000)
	c := must(NewCanopy(tab, 256))
	corr := c.Correlation("x", "y", 0, 20000)
	// y = 0.8x + 0.2ε: ρ = 0.8/sqrt(0.64+0.04) ≈ 0.970.
	if math.Abs(corr-0.970) > 0.02 {
		t.Fatalf("correlation %g, want ~0.97", corr)
	}
	// Symmetric in arguments.
	if c.Correlation("y", "x", 0, 20000) != corr {
		t.Fatal("correlation not symmetric")
	}
}

func TestCanopyRangeEdges(t *testing.T) {
	tab := NewTable("t", "x")
	for i := 0; i < 10; i++ {
		tab.Append(float64(i))
	}
	c := must(NewCanopy(tab, 4))
	// Range inside a single chunk.
	if got := c.Mean("x", 1, 3); got != 1.5 {
		t.Fatalf("single-chunk mean %g", got)
	}
	// Range spanning edges and full chunks.
	if got := c.Mean("x", 1, 9); got != 4.5 {
		t.Fatalf("spanning mean %g", got)
	}
	// Full table.
	if got := c.Mean("x", 0, 10); got != 4.5 {
		t.Fatalf("full mean %g", got)
	}
	// Out-of-range is clamped.
	if got := c.Mean("x", 0, 999); got != 4.5 {
		t.Fatalf("clamped mean %g", got)
	}
}

func TestCanopyReusesWorkAcrossSession(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50000
	tab := canopyTable(rng, n)
	c := must(NewCanopy(tab, 512))
	var naiveScanned int64

	// An exploratory session: 60 overlapping range queries.
	queries := make([][2]int, 60)
	for q := range queries {
		lo := rng.Intn(n / 2)
		queries[q] = [2]int{lo, lo + n/3}
	}
	for _, q := range queries {
		want := NaiveMean(tab, "x", q[0], q[1], &naiveScanned)
		got := c.Mean("x", q[0], q[1])
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("answer mismatch on [%d,%d)", q[0], q[1])
		}
	}
	t.Logf("rows scanned: canopy %d vs naive %d (%.1fx less)",
		c.RowsScanned(), naiveScanned, float64(naiveScanned)/float64(c.RowsScanned()))
	if c.RowsScanned() >= naiveScanned/4 {
		t.Fatalf("canopy scanned %d rows, naive %d: expected >=4x saving", c.RowsScanned(), naiveScanned)
	}
}
