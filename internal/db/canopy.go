package db

import (
	"fmt"
	"math"
)

// Canopy is a Data-Canopy-style statistics cache (Wasay et al., cited in
// the tutorial's data-exploration discussion): descriptive statistics over
// row ranges decompose into per-chunk basic aggregates (count, sum, sum of
// squares, min, max, and pairwise sum-of-products). Chunks are computed on
// first touch and reused by every later query that overlaps them, so an
// exploratory session's repeated, overlapping statistics get faster as it
// proceeds.
type Canopy struct {
	table     *Table
	chunkSize int
	// univariate chunk stats, built lazily per column
	cols map[string][]chunkStats
	// pairwise sum-of-products chunks, built lazily per (colA, colB)
	pairs map[[2]string][]pairStats
	// accounting
	rowsScanned int64 // rows touched building chunks or scanning edges
}

type chunkStats struct {
	built      bool
	count      float64
	sum, sumSq float64
	min, max   float64
}

type pairStats struct {
	built   bool
	sumProd float64
}

// NewCanopy creates a cache over t with the given chunk size (rows). A
// typed error rejects a non-positive chunk size. The statistics methods
// (Mean, Std, Min, Max, Correlation) require existing column names — the
// table's schema is fixed at construction, so callers resolve names once.
func NewCanopy(t *Table, chunkSize int) (*Canopy, error) {
	if chunkSize < 1 {
		return nil, &ArgError{Fn: "NewCanopy", Reason: fmt.Sprintf("chunk size %d < 1", chunkSize)}
	}
	return &Canopy{
		table:     t,
		chunkSize: chunkSize,
		cols:      map[string][]chunkStats{},
		pairs:     map[[2]string][]pairStats{},
	}, nil
}

// RowsScanned reports the total rows touched since creation — the work
// metric the cache exists to reduce.
func (c *Canopy) RowsScanned() int64 { return c.rowsScanned }

func (c *Canopy) numChunks() int {
	return (c.table.Rows() + c.chunkSize - 1) / c.chunkSize
}

func (c *Canopy) colChunks(col string) []chunkStats {
	if ch, ok := c.cols[col]; ok {
		return ch
	}
	ch := make([]chunkStats, c.numChunks())
	c.cols[col] = ch
	return ch
}

// buildChunk materialises one chunk's stats for a column.
func (c *Canopy) buildChunk(col string, chunks []chunkStats, ci int) {
	data := c.table.mustColumn(col)
	lo := ci * c.chunkSize
	hi := lo + c.chunkSize
	if hi > len(data) {
		hi = len(data)
	}
	st := chunkStats{built: true, min: math.Inf(1), max: math.Inf(-1)}
	for r := lo; r < hi; r++ {
		v := data[r]
		st.count++
		st.sum += v
		st.sumSq += v * v
		if v < st.min {
			st.min = v
		}
		if v > st.max {
			st.max = v
		}
	}
	c.rowsScanned += int64(hi - lo)
	chunks[ci] = st
}

// rangeStats aggregates [lo, hi) (row indices) for a column, combining
// cached chunks in the interior and scanning the ragged edges directly.
func (c *Canopy) rangeStats(col string, lo, hi int) chunkStats {
	data := c.table.mustColumn(col)
	if lo < 0 {
		lo = 0
	}
	if hi > len(data) {
		hi = len(data)
	}
	agg := chunkStats{min: math.Inf(1), max: math.Inf(-1)}
	addRow := func(v float64) {
		agg.count++
		agg.sum += v
		agg.sumSq += v * v
		if v < agg.min {
			agg.min = v
		}
		if v > agg.max {
			agg.max = v
		}
	}
	chunks := c.colChunks(col)
	firstFull := (lo + c.chunkSize - 1) / c.chunkSize
	lastFull := hi / c.chunkSize // exclusive chunk index bound
	if firstFull >= lastFull {
		// Range inside one or two chunks: direct scan.
		for r := lo; r < hi; r++ {
			addRow(data[r])
		}
		c.rowsScanned += int64(hi - lo)
		return agg
	}
	// Leading edge.
	for r := lo; r < firstFull*c.chunkSize; r++ {
		addRow(data[r])
	}
	c.rowsScanned += int64(firstFull*c.chunkSize - lo)
	// Cached interior.
	for ci := firstFull; ci < lastFull; ci++ {
		if !chunks[ci].built {
			c.buildChunk(col, chunks, ci)
		}
		st := chunks[ci]
		agg.count += st.count
		agg.sum += st.sum
		agg.sumSq += st.sumSq
		if st.min < agg.min {
			agg.min = st.min
		}
		if st.max > agg.max {
			agg.max = st.max
		}
	}
	// Trailing edge.
	for r := lastFull * c.chunkSize; r < hi; r++ {
		addRow(data[r])
	}
	c.rowsScanned += int64(hi - lastFull*c.chunkSize)
	return agg
}

// Mean returns the mean of col over rows [lo, hi).
func (c *Canopy) Mean(col string, lo, hi int) float64 {
	st := c.rangeStats(col, lo, hi)
	if st.count == 0 {
		return 0
	}
	return st.sum / st.count
}

// Std returns the population standard deviation of col over [lo, hi).
func (c *Canopy) Std(col string, lo, hi int) float64 {
	st := c.rangeStats(col, lo, hi)
	if st.count == 0 {
		return 0
	}
	mean := st.sum / st.count
	v := st.sumSq/st.count - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the minimum of col over [lo, hi).
func (c *Canopy) Min(col string, lo, hi int) float64 {
	return c.rangeStats(col, lo, hi).min
}

// Max returns the maximum of col over [lo, hi).
func (c *Canopy) Max(col string, lo, hi int) float64 {
	return c.rangeStats(col, lo, hi).max
}

// Correlation returns the Pearson correlation of two columns over [lo, hi),
// using cached sum-of-product chunks for the interior.
func (c *Canopy) Correlation(colA, colB string, lo, hi int) float64 {
	a := c.rangeStats(colA, lo, hi)
	b := c.rangeStats(colB, lo, hi)
	sp := c.rangeSumProd(colA, colB, lo, hi)
	n := a.count
	if n == 0 {
		return 0
	}
	cov := sp/n - (a.sum/n)*(b.sum/n)
	sdA := math.Sqrt(a.sumSq/n - (a.sum/n)*(a.sum/n))
	sdB := math.Sqrt(b.sumSq/n - (b.sum/n)*(b.sum/n))
	if sdA == 0 || sdB == 0 {
		return 0
	}
	return cov / (sdA * sdB)
}

func (c *Canopy) rangeSumProd(colA, colB string, lo, hi int) float64 {
	if colB < colA {
		colA, colB = colB, colA
	}
	key := [2]string{colA, colB}
	chunks, ok := c.pairs[key]
	if !ok {
		chunks = make([]pairStats, c.numChunks())
		c.pairs[key] = chunks
	}
	da, db := c.table.mustColumn(colA), c.table.mustColumn(colB)
	if hi > len(da) {
		hi = len(da)
	}
	var sp float64
	firstFull := (lo + c.chunkSize - 1) / c.chunkSize
	lastFull := hi / c.chunkSize
	if firstFull >= lastFull {
		for r := lo; r < hi; r++ {
			sp += da[r] * db[r]
		}
		c.rowsScanned += int64(hi - lo)
		return sp
	}
	for r := lo; r < firstFull*c.chunkSize; r++ {
		sp += da[r] * db[r]
	}
	for ci := firstFull; ci < lastFull; ci++ {
		if !chunks[ci].built {
			cl := ci * c.chunkSize
			ch := cl + c.chunkSize
			if ch > len(da) {
				ch = len(da)
			}
			var s float64
			for r := cl; r < ch; r++ {
				s += da[r] * db[r]
			}
			chunks[ci] = pairStats{built: true, sumProd: s}
			c.rowsScanned += int64(ch - cl)
		}
		sp += chunks[ci].sumProd
	}
	for r := lastFull * c.chunkSize; r < hi; r++ {
		sp += da[r] * db[r]
	}
	c.rowsScanned += int64(firstFull*c.chunkSize - lo + hi - lastFull*c.chunkSize)
	return sp
}

// NaiveMean scans the range directly (the no-cache baseline), charging the
// same work metric. The column must exist.
func NaiveMean(t *Table, col string, lo, hi int, rowsScanned *int64) float64 {
	data := t.mustColumn(col)
	if hi > len(data) {
		hi = len(data)
	}
	var sum, n float64
	for r := lo; r < hi; r++ {
		sum += data[r]
		n++
	}
	*rowsScanned += int64(hi - lo)
	if n == 0 {
		return 0
	}
	return sum / n
}
