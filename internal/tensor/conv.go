package tensor

// ConvGeom describes the geometry of a 2-D convolution over NCHW tensors.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// CheckInput returns a typed error when in is not an NCHW batch matching
// the geometry — the validated-at-construction gate Im2Col relies on.
func (g ConvGeom) CheckInput(in *Tensor) error {
	if in.Rank() != 4 {
		return errf("Im2Col", "requires rank-4 input, got %v", in.shape)
	}
	if in.shape[1] != g.InC || in.shape[2] != g.InH || in.shape[3] != g.InW {
		return errf("Im2Col", "input %v does not match geometry %+v", in.shape, g)
	}
	return nil
}

// Im2Col lowers a batch of NCHW images to a matrix so convolution becomes a
// matrix multiplication. The input must have shape [N, C, H, W]; the result
// has shape [N*OutH*OutW, C*KH*KW], one row per output spatial position.
func Im2Col(in *Tensor, g ConvGeom) *Tensor {
	must(g.CheckInput(in))
	n := in.shape[0]
	oh, ow := g.OutH(), g.OutW()
	cols := New(n*oh*ow, g.InC*g.KH*g.KW)
	rowLen := g.InC * g.KH * g.KW
	for b := 0; b < n; b++ {
		base := b * g.InC * g.InH * g.InW
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				r := ((b*oh)+oy)*ow + ox
				dst := cols.Data[r*rowLen : (r+1)*rowLen]
				di := 0
				for c := 0; c < g.InC; c++ {
					cbase := base + c*g.InH*g.InW
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
								dst[di] = in.Data[cbase+iy*g.InW+ix]
							} else {
								dst[di] = 0
							}
							di++
						}
					}
				}
			}
		}
	}
	return cols
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a column matrix
// of shape [N*OutH*OutW, C*KH*KW] back into an NCHW tensor of shape
// [N, C, H, W]. Overlapping patches sum, which is exactly the gradient of
// Im2Col.
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(errf("Col2Im", "input %v does not match geometry %+v (n=%d)", cols.shape, g, n))
	}
	out := New(n, g.InC, g.InH, g.InW)
	for b := 0; b < n; b++ {
		base := b * g.InC * g.InH * g.InW
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				r := ((b*oh)+oy)*ow + ox
				src := cols.Data[r*rowLen : (r+1)*rowLen]
				si := 0
				for c := 0; c < g.InC; c++ {
					cbase := base + c*g.InH*g.InW
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
								out.Data[cbase+iy*g.InW+ix] += src[si]
							}
							si++
						}
					}
				}
			}
		}
	}
	return out
}
