package tensor

// ConvGeom describes the geometry of a 2-D convolution over NCHW tensors.
type ConvGeom struct {
	InC, InH, InW int // input channels, height, width
	KH, KW        int // kernel height, width
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.KH)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.KW)/g.Stride + 1 }

// Validate returns a typed error when the geometry itself is nonsense:
// non-positive dimensions or stride, negative padding, or a kernel larger
// than the padded input (which would make the output extent non-positive).
// Before this gate existed a Stride of 0 reached OutH's integer division
// and panicked with a raw divide-by-zero — the motivating fuzz finding.
func (g ConvGeom) Validate() error {
	if g.InC < 1 || g.InH < 1 || g.InW < 1 {
		return errf("ConvGeom", "non-positive input dims in %+v", g)
	}
	if g.KH < 1 || g.KW < 1 {
		return errf("ConvGeom", "non-positive kernel dims in %+v", g)
	}
	if g.Stride < 1 {
		return errf("ConvGeom", "stride must be >= 1 in %+v", g)
	}
	if g.Pad < 0 {
		return errf("ConvGeom", "negative padding in %+v", g)
	}
	if g.KH > g.InH+2*g.Pad || g.KW > g.InW+2*g.Pad {
		return errf("ConvGeom", "kernel exceeds padded input in %+v", g)
	}
	return nil
}

// CheckInput returns a typed error when the geometry is invalid or in is
// not an NCHW batch matching it — the validated-at-construction gate
// Im2Col relies on.
func (g ConvGeom) CheckInput(in *Tensor) error {
	if err := g.Validate(); err != nil {
		return err
	}
	if in.Rank() != 4 {
		return errf("Im2Col", "requires rank-4 input, got %v", in.shape)
	}
	if in.shape[1] != g.InC || in.shape[2] != g.InH || in.shape[3] != g.InW {
		return errf("Im2Col", "input %v does not match geometry %+v", in.shape, g)
	}
	return nil
}

// Im2Col lowers a batch of NCHW images to a matrix so convolution becomes a
// matrix multiplication. The input must have shape [N, C, H, W]; the result
// has shape [N*OutH*OutW, C*KH*KW], one row per output spatial position.
func Im2Col(in *Tensor, g ConvGeom) *Tensor { return mustT(Im2ColChecked(in, g)) }

// Im2ColChecked is Im2Col returning an error instead of panicking on an
// invalid geometry or a mismatched input.
func Im2ColChecked(in *Tensor, g ConvGeom) (*Tensor, error) {
	if err := g.CheckInput(in); err != nil {
		return nil, err
	}
	n := in.shape[0]
	oh, ow := g.OutH(), g.OutW()
	cols := New(n*oh*ow, g.InC*g.KH*g.KW)
	im2colInto(cols, in, g)
	return cols, nil
}

// Im2ColInto is Im2Col writing into a caller-provided destination, reusing
// its storage when the shape already matches — the inference-path scratch
// buffer that keeps steady-state conv forwards allocation-free. Passing
// nil (or a tensor of the wrong shape) allocates fresh storage; either way
// the tensor holding the result is returned.
func Im2ColInto(dst, in *Tensor, g ConvGeom) *Tensor {
	must(g.CheckInput(in))
	n := in.shape[0]
	oh, ow := g.OutH(), g.OutW()
	rows, cols := n*oh*ow, g.InC*g.KH*g.KW
	if dst == nil || dst.Rank() != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		dst = New(rows, cols)
	}
	im2colInto(dst, in, g)
	return dst
}

func im2colInto(cols, in *Tensor, g ConvGeom) {
	n := in.shape[0]
	oh, ow := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	for b := 0; b < n; b++ {
		base := b * g.InC * g.InH * g.InW
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				r := ((b*oh)+oy)*ow + ox
				dst := cols.Data[r*rowLen : (r+1)*rowLen]
				di := 0
				for c := 0; c < g.InC; c++ {
					cbase := base + c*g.InH*g.InW
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
								dst[di] = in.Data[cbase+iy*g.InW+ix]
							} else {
								dst[di] = 0
							}
							di++
						}
					}
				}
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatters (accumulates) a column matrix
// of shape [N*OutH*OutW, C*KH*KW] back into an NCHW tensor of shape
// [N, C, H, W]. Overlapping patches sum, which is exactly the gradient of
// Im2Col.
func Col2Im(cols *Tensor, n int, g ConvGeom) *Tensor {
	oh, ow := g.OutH(), g.OutW()
	rowLen := g.InC * g.KH * g.KW
	if cols.Rank() != 2 || cols.shape[0] != n*oh*ow || cols.shape[1] != rowLen {
		panic(errf("Col2Im", "input %v does not match geometry %+v (n=%d)", cols.shape, g, n))
	}
	out := New(n, g.InC, g.InH, g.InW)
	for b := 0; b < n; b++ {
		base := b * g.InC * g.InH * g.InW
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				r := ((b*oh)+oy)*ow + ox
				src := cols.Data[r*rowLen : (r+1)*rowLen]
				si := 0
				for c := 0; c < g.InC; c++ {
					cbase := base + c*g.InH*g.InW
					for ky := 0; ky < g.KH; ky++ {
						iy := oy*g.Stride + ky - g.Pad
						for kx := 0; kx < g.KW; kx++ {
							ix := ox*g.Stride + kx - g.Pad
							if iy >= 0 && iy < g.InH && ix >= 0 && ix < g.InW {
								out.Data[cbase+iy*g.InW+ix] += src[si]
							}
							si++
						}
					}
				}
			}
		}
	}
	return out
}
