package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelFLOPThreshold is the multiply-add count below which parallelism
// costs more than it saves, even with the persistent pool.
const parallelFLOPThreshold = 1 << 20 // ~1M fused ops

// The persistent worker pool. Workers are spawned lazily up to
// GOMAXPROCS-1 (the submitting goroutine always participates, so the pool
// only ever needs helpers) and then parked on the task channel for the
// life of the process — the per-call goroutine spawn and its scheduler
// churn are gone from the GEMM hot path. Tasks are self-scheduling: each
// submitted helper drains chunks from a shared atomic counter, so an idle
// worker steals whatever chunks a slow one has not claimed yet. Chunk
// boundaries depend only on the row count and worker target, and every
// output row is written by exactly one task, so results are deterministic
// regardless of which worker runs which chunk.
var (
	poolTasks = make(chan func(), 256)
	poolMu    sync.Mutex
	poolSize  int
)

// poolEnsure grows the pool to at least n parked workers.
func poolEnsure(n int) {
	if n <= 0 {
		return
	}
	poolMu.Lock()
	for ; poolSize < n; poolSize++ {
		go func() {
			for f := range poolTasks {
				f()
			}
		}()
	}
	poolMu.Unlock()
}

// parallelRows splits [0, m) into contiguous chunks and runs fn on each,
// using the persistent pool. When m is smaller than the worker target the
// call runs serially — spawning cannot pay for itself on fewer rows than
// workers.
func parallelRows(m int, fn func(lo, hi int)) { parallelRowsAligned(m, 1, fn) }

// parallelRowsAligned is parallelRows with chunk boundaries rounded up to a
// multiple of align (except the final chunk), so blocked kernels keep full
// micro-tiles inside one chunk. Chunk count is capped at the worker target
// (GOMAXPROCS), and the caller always executes chunks alongside the pool:
// if every pool worker is busy — including the nested-parallelism case
// where fn itself reaches this function — the caller simply drains the
// whole range itself, so the pool cannot deadlock.
func parallelRowsAligned(m, align int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || m < workers || m < align*2 {
		if m > 0 {
			fn(0, m)
		}
		return
	}
	chunk := (m + workers - 1) / workers
	if r := chunk % align; r != 0 {
		chunk += align - r
	}
	nchunks := (m + chunk - 1) / chunk
	if nchunks <= 1 {
		fn(0, m)
		return
	}
	poolEnsure(workers - 1)

	var next atomic.Int64
	work := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= nchunks {
				return
			}
			lo := c * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			fn(lo, hi)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < nchunks-1; i++ {
		wg.Add(1)
		task := func() { defer wg.Done(); work() }
		submitted := false
		select {
		case poolTasks <- task:
			submitted = true
		default:
		}
		if !submitted {
			wg.Done()
			break
		}
	}
	work()
	wg.Wait()
}
