package tensor

import (
	"runtime"
	"sync"
)

// parallelFLOPThreshold is the multiply-add count below which spawning
// goroutines costs more than it saves.
const parallelFLOPThreshold = 1 << 20 // ~1M fused ops

// parallelRows splits [0, m) into one contiguous chunk per worker and runs
// fn on each chunk concurrently. Chunk boundaries depend only on m and the
// worker count, and each output row is written by exactly one goroutine, so
// results are deterministic.
func parallelRows(m int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers <= 1 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	chunk := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
