package tensor

import "sync"

// This file is the cache-blocked GEMM engine behind MatMul, MatMulTransA,
// MatMulTransB, and BatMul. The kernel hierarchy, from slowest and most
// authoritative to fastest:
//
//	reference — matMulRows, the straightforward i-k-j triple loop. Every
//	            other float64 tier is defined against it.
//	tiled     — gemmPacked: B repacked into contiguous gemmNR-wide column
//	            strips, output computed by a branch-free 4x4 register
//	            micro-kernel sweeping the full k extent per output tile.
//	pooled    — the tiled kernel with output rows partitioned across the
//	            persistent worker pool (parallel.go).
//	batched   — BatMul: the tiled/pooled kernel applied per batch slice of
//	            contiguous stride-indexed rank-3 operands.
//	f32       — gemm32.go: the same tiling for float32 storage (serving-side
//	            inference), bounded-ULP against the float64 reference.
//
// Determinism contract: every float64 tier accumulates each output element
// with a single accumulator over ascending k, so for finite inputs all
// tiers produce bit-identical results — parallelism only changes which
// worker computes a row, never the arithmetic order. (The reference kernel
// skips zero left-operand products, the tiled kernel multiplies through;
// for finite operands adding the resulting ±0 never changes an accumulator,
// so the tiers agree bit-for-bit. Only non-finite inputs — where 0·Inf is
// NaN — can make the tiers differ; each tier stays deterministic even
// then.)
const (
	gemmMR    = 4 // scalar micro-kernel rows per sweep
	gemmNR    = 4 // micro-kernel columns; also the packed strip width
	gemmMRAsm = 8 // AVX micro-kernel rows per sweep (gemm_amd64.s)
	gemmMC    = 64
	// gemmNC is the column-block width per cache pass: one block of packed
	// strips (gemmNC·k floats) is reused across a gemmMC-row block before
	// moving on, keeping the strips hot in L1/L2.
	gemmNC = 128

	// gemmMinRows is the row count below which repacking B cannot be
	// amortised and the reference kernel runs instead.
	gemmMinRows = 8
	// gemmPackFLOPs is the m·k·n product above which the packed tiled
	// kernel beats the reference kernel despite the packing pass.
	gemmPackFLOPs = 1 << 16
)

// scratchPool recycles packing and im2col buffers across calls so steady-
// state GEMMs allocate nothing beyond their output tensor.
var scratchPool sync.Pool

// getScratch returns a float64 buffer with at least n usable elements.
func getScratch(n int) []float64 {
	if v := scratchPool.Get(); v != nil {
		if s := v.(*[]float64); cap(*s) >= n {
			return (*s)[:n]
		}
	}
	return make([]float64, n)
}

// putScratch recycles a buffer obtained from getScratch.
func putScratch(s []float64) {
	scratchPool.Put(&s)
}

// packB repacks the k×n matrix b into gemmNR-wide column strips: strip js
// (js a multiple of gemmNR, width w = min(gemmNR, n-js)) occupies
// bp[js*k : js*k+k*w], stored p-major so the micro-kernel streams it
// sequentially. Every strip row sits on consecutive cache lines regardless
// of n, which removes the large-stride (and power-of-two aliasing) misses
// of walking b's rows directly.
func packB(b *Tensor, bp []float64) {
	k, n := b.shape[0], b.shape[1]
	for js := 0; js < n; js += gemmNR {
		w := n - js
		if w > gemmNR {
			w = gemmNR
		}
		dst := bp[js*k : js*k+k*w]
		if w == gemmNR {
			for p := 0; p < k; p++ {
				src := b.Data[p*n+js : p*n+js+gemmNR]
				d := dst[p*gemmNR : p*gemmNR+gemmNR]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
		} else {
			for p := 0; p < k; p++ {
				copy(dst[p*w:p*w+w], b.Data[p*n+js:p*n+js+w])
			}
		}
	}
}

// packBTrans packs bᵀ for the fused MatMulTransB path: b has shape n×k and
// strip element [p][jr] is b[js+jr][p]. Source rows are contiguous, so the
// pack streams b once.
func packBTrans(b *Tensor, bp []float64) {
	n, k := b.shape[0], b.shape[1]
	for js := 0; js < n; js += gemmNR {
		w := n - js
		if w > gemmNR {
			w = gemmNR
		}
		dst := bp[js*k : js*k+k*w]
		for jr := 0; jr < w; jr++ {
			row := b.Data[(js+jr)*k : (js+jr)*k+k]
			for p, v := range row {
				dst[p*w+jr] = v
			}
		}
	}
}

// gemmPacked computes output rows [lo, hi) of the m×n product against a
// packed operand: out[i] += a[i]·B with B in packB/packBTrans strip layout.
// Rows are blocked by gemmMC and columns by gemmNC so one block of strips
// stays cache-resident while gemmMC rows sweep it; each 4x4 output tile is
// produced by a register micro-kernel sweeping the full k extent.
func gemmPacked(aData []float64, k, n int, bp, out []float64, lo, hi int) {
	for jc := 0; jc < n; jc += gemmNC {
		nc := n - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		for ic := lo; ic < hi; ic += gemmMC {
			mc := hi - ic
			if mc > gemmMC {
				mc = gemmMC
			}
			for js := jc; js < jc+nc; js += gemmNR {
				w := n - js
				if w > gemmNR {
					w = gemmNR
				}
				strip := bp[js*k : js*k+k*w]
				i := ic
				if w == gemmNR {
					if hasAVX && k > 0 {
						for ; i+gemmMRAsm <= ic+mc; i += gemmMRAsm {
							gemm8x4AVX(&aData[i*k], k, &strip[0], &out[i*n+js], n)
						}
					}
					for ; i+gemmMR <= ic+mc; i += gemmMR {
						micro4x4(aData[i*k:(i+gemmMR)*k], k, strip, out[i*n+js:], n)
					}
				}
				for i < ic+mc {
					r := ic + mc - i
					if r > gemmMR {
						r = gemmMR
					}
					microEdge(aData[i*k:(i+r)*k], k, r, strip, w, out[i*n+js:], n)
					i += r
				}
			}
		}
	}
}

// micro4x4 computes a full 4x4 output tile: sixteen register accumulators
// sweep the entire k extent once (ascending, one accumulator per element —
// the bit-exactness contract) and are stored to the zeroed output with a
// single write each. strip holds 4 packed B columns, p-major.
func micro4x4(a []float64, k int, strip, out []float64, n int) {
	a0, a1, a2, a3 := a[:k], a[k:2*k], a[2*k:3*k], a[3*k:4*k]
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	sp := 0
	for p := 0; p < k; p++ {
		b0, b1, b2, b3 := strip[sp], strip[sp+1], strip[sp+2], strip[sp+3]
		sp += 4
		v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
		c00 += v0 * b0
		c01 += v0 * b1
		c02 += v0 * b2
		c03 += v0 * b3
		c10 += v1 * b0
		c11 += v1 * b1
		c12 += v1 * b2
		c13 += v1 * b3
		c20 += v2 * b0
		c21 += v2 * b1
		c22 += v2 * b2
		c23 += v2 * b3
		c30 += v3 * b0
		c31 += v3 * b1
		c32 += v3 * b2
		c33 += v3 * b3
	}
	o := out[:4]
	o[0], o[1], o[2], o[3] = c00, c01, c02, c03
	o = out[n : n+4]
	o[0], o[1], o[2], o[3] = c10, c11, c12, c13
	o = out[2*n : 2*n+4]
	o[0], o[1], o[2], o[3] = c20, c21, c22, c23
	o = out[3*n : 3*n+4]
	o[0], o[1], o[2], o[3] = c30, c31, c32, c33
}

// microEdge handles the remainder tiles (r ≤ 4 rows, w ≤ 4 columns) with
// the same single-accumulator ascending-k order as micro4x4.
func microEdge(a []float64, k, r int, strip []float64, w int, out []float64, n int) {
	var acc [gemmMR * gemmNR]float64
	for p := 0; p < k; p++ {
		bq := strip[p*w : p*w+w]
		for ir := 0; ir < r; ir++ {
			v := a[ir*k+p]
			ac := acc[ir*gemmNR : ir*gemmNR+w]
			for jr, bv := range bq {
				ac[jr] += v * bv
			}
		}
	}
	for ir := 0; ir < r; ir++ {
		copy(out[ir*n:ir*n+w], acc[ir*gemmNR:ir*gemmNR+w])
	}
}

// usePacked reports whether the tiled kernel pays for the given problem.
func usePacked(m, k, n int) bool {
	return m >= gemmMinRows && k > 0 && n > 0 &&
		int64(m)*int64(k)*int64(n) >= gemmPackFLOPs
}

// gemmAuto runs the packed kernel over rows [0, m), on the worker pool when
// the product is large enough; bp must already hold the packed operand.
func gemmAuto(aData []float64, m, k, n int, bp, out []float64) {
	if int64(m)*int64(k)*int64(n) >= parallelFLOPThreshold {
		parallelRowsAligned(m, gemmMRAsm, func(lo, hi int) {
			gemmPacked(aData, k, n, bp, out, lo, hi)
		})
		return
	}
	gemmPacked(aData, k, n, bp, out, 0, m)
}

// MatMulRef is the serial reference GEMM: the plain i-k-j triple loop every
// faster kernel tier is measured against. It exists as a public entry point
// so equivalence tests and benchmarks outside this package can pin the
// faster tiers to it.
func MatMulRef(a, b *Tensor) *Tensor {
	out, err := matMulNew("MatMul", a, b)
	must(err)
	matMulRows(a, b, out, 0, a.shape[0])
	return out
}

// MatMulTiled runs the cache-blocked packed kernel serially (no worker
// pool) — the "tiled" tier of the kernel hierarchy. Callers normally want
// MatMul, which picks the best tier automatically.
func MatMulTiled(a, b *Tensor) *Tensor {
	out, err := matMulNew("MatMul", a, b)
	must(err)
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if k == 0 || n == 0 || m == 0 {
		return out
	}
	bp := getScratch(k * n)
	packB(b, bp)
	gemmPacked(a.Data, k, n, bp, out.Data, 0, m)
	putScratch(bp)
	return out
}

// matMulNew validates rank-2 conformability and allocates the output.
func matMulNew(op string, a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, errf(op, "requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[0] {
		return nil, errf(op, "inner dimension mismatch %v · %v", a.shape, b.shape)
	}
	return New(a.shape[0], b.shape[1]), nil
}

// BatMul returns the batched matrix product of two rank-3 tensors:
// [batch, m, k] · [batch, k, n] → [batch, m, n]. Batch slice i is the
// matrix product a[i]·b[i], bit-identical to MatMul on the same slices.
func BatMul(a, b *Tensor) *Tensor { return mustT(BatMulChecked(a, b)) }

// BatMulChecked is BatMul returning an error instead of panicking. Unlike
// MatMulChecked it rejects degenerate shapes (any zero dimension, including
// k = 0): batched storage is stride-indexed, and a zero stride silently
// aliases every slice to the same empty view, so it is refused outright.
func BatMulChecked(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 3 || b.Rank() != 3 {
		return nil, errf("BatMul", "requires rank-3 operands, got %v and %v", a.shape, b.shape)
	}
	if a.shape[0] != b.shape[0] {
		return nil, errf("BatMul", "batch mismatch %v · %v", a.shape, b.shape)
	}
	if a.shape[2] != b.shape[1] {
		return nil, errf("BatMul", "inner dimension mismatch %v · %v", a.shape, b.shape)
	}
	bt, m, k := a.shape[0], a.shape[1], a.shape[2]
	n := b.shape[2]
	if bt == 0 || m == 0 || k == 0 || n == 0 {
		return nil, errf("BatMul", "degenerate shape %v · %v (every dimension must be positive)", a.shape, b.shape)
	}
	out := New(bt, m, n)
	if usePacked(m, k, n) {
		// Pack every batch slice once, then partition the bt·m global rows
		// across the pool; chunk boundaries may land inside a slice, which
		// the per-element accumulation order makes harmless.
		bp := getScratch(bt * k * n)
		for i := 0; i < bt; i++ {
			packB(batSlice(b, i, k, n), bp[i*k*n:(i+1)*k*n])
		}
		rows := bt * m
		run := func(lo, hi int) {
			for g := lo; g < hi; {
				bi := g / m
				r0 := g % m
				r1 := m
				if rem := hi - g; r0+rem < m {
					r1 = r0 + rem
				}
				gemmPacked(a.Data[bi*m*k:], k, n, bp[bi*k*n:(bi+1)*k*n], out.Data[bi*m*n:], r0, r1)
				g += r1 - r0
			}
		}
		if int64(rows)*int64(k)*int64(n) >= parallelFLOPThreshold {
			parallelRowsAligned(rows, gemmMRAsm, run)
		} else {
			run(0, rows)
		}
		putScratch(bp)
		return out, nil
	}
	for i := 0; i < bt; i++ {
		av := batSlice(a, i, m, k)
		bv := batSlice(b, i, k, n)
		ov := batSlice(out, i, m, n)
		matMulRows(av, bv, ov, 0, m)
	}
	return out, nil
}

// batSlice views batch element i of a rank-3 tensor as an r×c matrix
// sharing the underlying storage.
func batSlice(t *Tensor, i, r, c int) *Tensor {
	return &Tensor{shape: []int{r, c}, Data: t.Data[i*r*c : (i+1)*r*c]}
}
