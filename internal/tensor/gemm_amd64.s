// AVX micro-kernel for the tiled GEMM engine (gemm.go). The kernel keeps
// the bit-exactness contract: each output element is one YMM lane that
// accumulates a[i][p]*b[p][j] in ascending p with a separate VMULPD and
// VADDPD — the same IEEE-754 mul-then-add rounding as the scalar
// reference kernel. FMA is never used (its single rounding would differ).

#include "textflag.h"

// func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxArg+0(FP), AX
	MOVL ecxArg+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gemm8x4AVX(a *float64, k int, strip *float64, out *float64, n int)
//
// Computes a full 8x4 output tile: out[r*n+j] = sum_p a[r*k+p]*strip[p*4+j]
// for r in 0..7, j in 0..3. a points at 8 contiguous rows of length k,
// strip is a packB column strip (p-major, width 4), out points at the
// tile's top-left element inside a zeroed m x n output (row stride n).
// Eight YMM accumulators (one per output row, four columns per lane) sweep
// the full k extent once and store with a single write each.
TEXT ·gemm8x4AVX(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ k+8(FP), CX
	MOVQ strip+16(FP), BX
	MOVQ out+24(FP), DI
	MOVQ n+32(FP), DX

	SHLQ $3, DX              // out row stride in bytes
	MOVQ CX, R15
	SHLQ $3, R15             // a row stride in bytes; also the loop bound
	LEAQ (SI)(R15*1), R9     // a row 1
	LEAQ (R9)(R15*1), R10    // a row 2
	LEAQ (R10)(R15*1), R11   // a row 3
	LEAQ (R11)(R15*1), R12   // a row 4
	LEAQ (R12)(R15*1), R13   // a row 5
	LEAQ (R13)(R15*1), R14   // a row 6
	LEAQ (R14)(R15*1), AX    // a row 7

	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11
	VXORPD Y12, Y12, Y12
	VXORPD Y13, Y13, Y13
	VXORPD Y14, Y14, Y14
	VXORPD Y15, Y15, Y15

	XORQ R8, R8              // byte offset into each a row; strip offset is 4x
	CMPQ R8, R15
	JGE  store

loop:
	VMOVUPD (BX)(R8*4), Y0   // strip[p*4 .. p*4+3]
	VBROADCASTSD (SI)(R8*1), Y1
	VMULPD Y0, Y1, Y1
	VADDPD Y1, Y8, Y8
	VBROADCASTSD (R9)(R8*1), Y2
	VMULPD Y0, Y2, Y2
	VADDPD Y2, Y9, Y9
	VBROADCASTSD (R10)(R8*1), Y3
	VMULPD Y0, Y3, Y3
	VADDPD Y3, Y10, Y10
	VBROADCASTSD (R11)(R8*1), Y4
	VMULPD Y0, Y4, Y4
	VADDPD Y4, Y11, Y11
	VBROADCASTSD (R12)(R8*1), Y5
	VMULPD Y0, Y5, Y5
	VADDPD Y5, Y12, Y12
	VBROADCASTSD (R13)(R8*1), Y6
	VMULPD Y0, Y6, Y6
	VADDPD Y6, Y13, Y13
	VBROADCASTSD (R14)(R8*1), Y7
	VMULPD Y0, Y7, Y7
	VADDPD Y7, Y14, Y14
	VBROADCASTSD (AX)(R8*1), Y1
	VMULPD Y0, Y1, Y1
	VADDPD Y1, Y15, Y15
	ADDQ $8, R8
	CMPQ R8, R15
	JLT  loop

store:
	VMOVUPD Y8, (DI)
	ADDQ DX, DI
	VMOVUPD Y9, (DI)
	ADDQ DX, DI
	VMOVUPD Y10, (DI)
	ADDQ DX, DI
	VMOVUPD Y11, (DI)
	ADDQ DX, DI
	VMOVUPD Y12, (DI)
	ADDQ DX, DI
	VMOVUPD Y13, (DI)
	ADDQ DX, DI
	VMOVUPD Y14, (DI)
	ADDQ DX, DI
	VMOVUPD Y15, (DI)
	VZEROUPPER
	RET
