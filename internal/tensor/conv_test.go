package tensor

import (
	"math/rand"
	"testing"
)

func TestConvGeomDims(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-pad conv dims %dx%d, want 8x8", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 6, InW: 6, KH: 2, KW: 2, Stride: 2, Pad: 0}
	if g2.OutH() != 3 || g2.OutW() != 3 {
		t.Fatalf("strided dims %dx%d, want 3x3", g2.OutH(), g2.OutW())
	}
}

// A 1x1 kernel with stride 1 and no padding is the identity lowering: each
// im2col row is a single input element in channel-major order.
func TestIm2ColIdentityKernel(t *testing.T) {
	in := FromSlice([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 1, 2, 2, 2)
	g := ConvGeom{InC: 2, InH: 2, InW: 2, KH: 1, KW: 1, Stride: 1, Pad: 0}
	cols := Im2Col(in, g)
	if cols.Dim(0) != 4 || cols.Dim(1) != 2 {
		t.Fatalf("cols shape %v", cols.Shape())
	}
	// Row for spatial position (0,0): channel 0 value 1, channel 1 value 5.
	if cols.At(0, 0) != 1 || cols.At(0, 1) != 5 {
		t.Fatalf("row 0 = %v", cols.Row(0))
	}
	if cols.At(3, 0) != 4 || cols.At(3, 1) != 8 {
		t.Fatalf("row 3 = %v", cols.Row(3))
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	in := FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	g := ConvGeom{InC: 1, InH: 2, InW: 2, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cols := Im2Col(in, g)
	// Output position (0,0) covers input rows -1..1 and cols -1..1; the
	// top-left 2x2 of the 3x3 patch is padding.
	row := cols.Row(0)
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, w := range want {
		if row[i] != w {
			t.Fatalf("padded row = %v, want %v", row, want)
		}
	}
}

// Col2Im(Im2Col(x)) with non-overlapping patches reproduces x exactly.
func TestCol2ImRoundTripNonOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := RandNormal(rng, 0, 1, 2, 3, 4, 4)
	g := ConvGeom{InC: 3, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 2, Pad: 0}
	cols := Im2Col(in, g)
	back := Col2Im(cols, 2, g)
	if !Equal(in, back, 0) {
		t.Fatal("non-overlapping round trip failed")
	}
}

// With overlapping patches, Col2Im accumulates: each interior element is
// counted once per patch covering it. For a 3x3 kernel, stride 1, pad 1 over
// a constant image, the count pattern is known.
func TestCol2ImAccumulates(t *testing.T) {
	in := Full(1, 1, 1, 3, 3)
	g := ConvGeom{InC: 1, InH: 3, InW: 3, KH: 3, KW: 3, Stride: 1, Pad: 1}
	cols := Im2Col(in, g)
	back := Col2Im(cols, 1, g)
	// Center element is covered by all 9 patches; corner by 4.
	if back.At(0, 0, 1, 1) != 9 {
		t.Fatalf("center count = %g, want 9", back.At(0, 0, 1, 1))
	}
	if back.At(0, 0, 0, 0) != 4 {
		t.Fatalf("corner count = %g, want 4", back.At(0, 0, 0, 0))
	}
}

// Property: Col2Im is the linear adjoint of Im2Col, i.e.
// <Im2Col(x), y> == <x, Col2Im(y)> for random x, y.
func TestIm2ColAdjointProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(2)
		g := ConvGeom{
			InC: 1 + rng.Intn(3), InH: 3 + rng.Intn(4), InW: 3 + rng.Intn(4),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3), Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		if g.OutH() <= 0 || g.OutW() <= 0 {
			continue
		}
		x := RandNormal(rng, 0, 1, n, g.InC, g.InH, g.InW)
		y := RandNormal(rng, 0, 1, n*g.OutH()*g.OutW(), g.InC*g.KH*g.KW)
		ax := Im2Col(x, g)
		aty := Col2Im(y, n, g)
		var lhs, rhs float64
		for i := range ax.Data {
			lhs += ax.Data[i] * y.Data[i]
		}
		for i := range x.Data {
			rhs += x.Data[i] * aty.Data[i]
		}
		if diff := lhs - rhs; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("adjoint mismatch %g vs %g (geom %+v)", lhs, rhs, g)
		}
	}
}

// Finite-difference gradient check for the convolution lowering path. The
// loss L(x) = ½ Σᵢ wᵢ·Im2Col(x)ᵢ² is nonlinear in x, so central differences
// exercise the real chain rule: the analytic gradient is
// Col2Im(w ∘ Im2Col(x)), and every input element's finite-difference
// quotient must match it to second order. This is the same backward path a
// conv layer takes (dL/dx = Col2Im of the column-space gradient), checked
// against ground truth rather than against another hand-derived formula.
func TestConvGradFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		n := 1 + rng.Intn(2)
		g := ConvGeom{
			InC: 1 + rng.Intn(2), InH: 3 + rng.Intn(3), InW: 3 + rng.Intn(3),
			KH: 1 + rng.Intn(3), KW: 1 + rng.Intn(3), Stride: 1 + rng.Intn(2), Pad: rng.Intn(2),
		}
		x := RandNormal(rng, 0, 1, n, g.InC, g.InH, g.InW)
		w := RandNormal(rng, 0, 1, n*g.OutH()*g.OutW(), g.InC*g.KH*g.KW)

		loss := func(in *Tensor) float64 {
			cols := Im2Col(in, g)
			var l float64
			for i, c := range cols.Data {
				l += 0.5 * w.Data[i] * c * c
			}
			return l
		}

		// Analytic: dL/dcols = w ∘ cols, pulled back through the adjoint.
		cols := Im2Col(x, g)
		grad := Col2Im(Mul(w, cols), n, g)

		const eps = 1e-5
		for i := range x.Data {
			orig := x.Data[i]
			x.Data[i] = orig + eps
			plus := loss(x)
			x.Data[i] = orig - eps
			minus := loss(x)
			x.Data[i] = orig
			fd := (plus - minus) / (2 * eps)
			if diff := fd - grad.Data[i]; diff > 1e-6 || diff < -1e-6 {
				t.Fatalf("trial %d: grad[%d] analytic %g vs finite-diff %g (geom %+v)",
					trial, i, grad.Data[i], fd, g)
			}
		}
	}
}
