//go:build amd64

package tensor

// Implemented in gemm_amd64.s.
func cpuidex(eaxArg, ecxArg uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
func gemm8x4AVX(a *float64, k int, strip *float64, out *float64, n int)

// hasAVX reports whether the CPU and OS support 256-bit AVX state, gating
// the assembly micro-kernel. Detection runs once at startup; everything
// else in the engine is pure Go, so non-AVX machines just take the scalar
// micro-kernels.
var hasAVX = detectAVX()

func detectAVX() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidex(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	lo, _ := xgetbv0()
	return lo&6 == 6 // OS saves both XMM and YMM state
}
