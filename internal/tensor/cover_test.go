package tensor

import (
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func TestScaleApplyAndFriends(t *testing.T) {
	x := FromSlice([]float64{1, -2, 3}, 3)
	y := Scale(2, x)
	if y.Data[1] != -4 {
		t.Fatalf("Scale: %v", y.Data)
	}
	z := Apply(x, func(v float64) float64 { return v * v })
	if z.Data[2] != 9 {
		t.Fatalf("Apply: %v", z.Data)
	}
	x.ApplyInPlace(func(v float64) float64 { return v + 1 })
	if x.Data[0] != 2 {
		t.Fatalf("ApplyInPlace: %v", x.Data)
	}
}

func TestCopyFromAndZero(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := New(2, 2)
	b.CopyFrom(a)
	if !Equal(a, b, 0) {
		t.Fatal("CopyFrom failed")
	}
	b.Zero()
	if b.Sum() != 0 {
		t.Fatal("Zero failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape-mismatch panic")
		}
	}()
	b.CopyFrom(New(4))
}

func TestStringRendering(t *testing.T) {
	small := FromSlice([]float64{1, 2}, 2)
	if s := small.String(); !strings.Contains(s, "Tensor[2]") || !strings.Contains(s, "1") {
		t.Fatalf("small String: %s", s)
	}
	big := New(100)
	if s := big.String(); !strings.Contains(s, "...") {
		t.Fatalf("big String should summarise: %s", s)
	}
}

func TestHeInitShapeAndShapeAccessor(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	k := HeInitShape(rng, 27, 4, 27)
	if sh := k.Shape(); sh[0] != 4 || sh[1] != 27 {
		t.Fatalf("shape %v", sh)
	}
	if k.AbsMax() == 0 {
		t.Fatal("He init produced zeros")
	}
}

func TestMeanEmptyAndEqualShapes(t *testing.T) {
	e := New(0)
	if e.Mean() != 0 {
		t.Fatal("empty Mean should be 0")
	}
	if Equal(New(2), New(3), 1) {
		t.Fatal("different shapes cannot be Equal")
	}
	if New(2, 3).SameShape(New(2)) {
		t.Fatal("rank mismatch should not be SameShape")
	}
}

func TestInPlacePanicsOnShapeMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddInPlace":  func() { New(2).AddInPlace(New(3)) },
		"AxpyInPlace": func() { New(2).AxpyInPlace(1, New(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRowPanicsOnRank1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(4).Row(0)
}

func TestCheckShapePanicsOnEmptyShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New()
}

// The parallel GEMM path must be bit-identical to the serial path.
func TestMatMulParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Big enough to cross parallelFLOPThreshold (256^3 = 16.7M).
	a := RandNormal(rng, 0, 1, 256, 256)
	b := RandNormal(rng, 0, 1, 256, 256)
	par := MatMul(a, b)
	ser := New(256, 256)
	matMulRows(a, b, ser, 0, 256)
	if !Equal(par, ser, 0) {
		t.Fatal("parallel GEMM diverges from serial")
	}
}

// The determinism regression: the pooled kernel must stay bit-identical
// to the serial reference regardless of how many workers the pool can
// recruit. Run under -race in CI, this also shakes out data races in the
// persistent pool's chunk self-scheduling.
func TestMatMulDeterministicAcrossGOMAXPROCS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := RandNormal(rng, 0, 1, 256, 256)
	b := RandNormal(rng, 0, 1, 256, 256)
	ser := New(256, 256)
	matMulRows(a, b, ser, 0, 256)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		if got := MatMul(a, b); !Equal(got, ser, 0) {
			t.Fatalf("GOMAXPROCS=%d: MatMul diverges from serial reference", procs)
		}
		ab := New(2, 256, 256)
		bb := New(2, 256, 256)
		copy(ab.Data[:256*256], a.Data)
		copy(ab.Data[256*256:], a.Data)
		copy(bb.Data[:256*256], b.Data)
		copy(bb.Data[256*256:], b.Data)
		bout := BatMul(ab, bb)
		for s := 0; s < 2; s++ {
			for i, v := range bout.Data[s*256*256 : (s+1)*256*256] {
				if v != ser.Data[i] {
					t.Fatalf("GOMAXPROCS=%d: BatMul slice %d diverges at %d", procs, s, i)
				}
			}
		}
	}
}

// parallelRows must not spawn chunks for row counts below the worker
// target — the heuristic fix: a tiny m above the FLOP threshold used to
// fan out anyway.
func TestParallelRowsSkipsSpawnForTinyM(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(8)
	calls := 0
	parallelRows(3, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 3 {
			t.Fatalf("expected one serial chunk, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("m < workers should run serially in one call, got %d", calls)
	}
	// Chunk count never exceeds the worker target.
	var chunks atomic.Int32
	parallelRows(1000, func(lo, hi int) { chunks.Add(1) })
	if c := chunks.Load(); c > 8 {
		t.Fatalf("chunks %d exceed GOMAXPROCS", c)
	}
}

func TestParallelRowsCoversRange(t *testing.T) {
	seen := make([]int32, 1000)
	parallelRows(1000, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			seen[i]++
		}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("row %d visited %d times", i, c)
		}
	}
	// Degenerate sizes.
	called := false
	parallelRows(1, func(lo, hi int) { called = lo == 0 && hi == 1 })
	if !called {
		t.Fatal("single-row case not handled")
	}
}
