package tensor

import (
	"math"
	"math/rand"
)

// RandUniform returns a tensor with elements drawn i.i.d. from
// Uniform[lo, hi).
func RandUniform(rng *rand.Rand, lo, hi float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return t
}

// RandNormal returns a tensor with elements drawn i.i.d. from N(mean, std²).
func RandNormal(rng *rand.Rand, mean, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = mean + std*rng.NormFloat64()
	}
	return t
}

// XavierInit returns a fanIn×fanOut weight matrix initialised with Glorot
// uniform scaling, appropriate for tanh/sigmoid layers.
func XavierInit(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	return RandUniform(rng, -limit, limit, fanIn, fanOut)
}

// HeInit returns a fanIn×fanOut weight matrix initialised with He normal
// scaling, appropriate for ReLU layers.
func HeInit(rng *rand.Rand, fanIn, fanOut int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandNormal(rng, 0, std, fanIn, fanOut)
}

// HeInitShape initialises a tensor of arbitrary shape with He normal scaling
// computed from the given fan-in (used for convolution kernels).
func HeInitShape(rng *rand.Rand, fanIn int, shape ...int) *Tensor {
	std := math.Sqrt(2.0 / float64(fanIn))
	return RandNormal(rng, 0, std, shape...)
}
