//go:build !amd64

package tensor

// Non-amd64 builds run the pure-Go micro-kernels; hasAVX being a false
// constant lets the compiler drop the assembly call sites entirely.
const hasAVX = false

func gemm8x4AVX(a *float64, k int, strip *float64, out *float64, n int) {
	panic(errf("MatMul", "assembly kernel unavailable on this architecture"))
}
