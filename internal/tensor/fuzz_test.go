package tensor

import (
	"math"
	"testing"
)

// Fuzz targets for the Checked entry points. Values are clamped finite
// because the bit-exactness contract only covers finite inputs (gemm.go);
// shape handling is the property under test — the Checked APIs must either
// return a typed error or produce output matching the reference kernel,
// never panic.

// clampFinite maps arbitrary fuzzed float64 bits to a finite value.
func clampFinite(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 1
	}
	if v > 1e150 {
		return 1e150
	}
	if v < -1e150 {
		return -1e150
	}
	return v
}

func FuzzMatMulShapes(f *testing.F) {
	// Seeds include the shapes that previously stressed the kernels: the
	// 1-row product, tile remainders around the 4- and 8-row boundaries,
	// degenerate k=0, and rank-breaking dimension zeros.
	f.Add(1, 1, 1, int64(1))
	f.Add(1, 7, 5, int64(2))
	f.Add(8, 33, 4, int64(3))
	f.Add(9, 17, 9, int64(4))
	f.Add(3, 0, 4, int64(5))
	f.Add(0, 3, 4, int64(6))
	f.Add(33, 65, 29, int64(7))
	f.Fuzz(func(t *testing.T, m, k, n int, seed int64) {
		// Bound sizes so the fuzzer explores shapes, not out-of-memory.
		if m < 0 || k < 0 || n < 0 || m > 70 || k > 70 || n > 70 {
			t.Skip()
		}
		a, b := New(m, k), New(k, n)
		r := seed
		next := func() float64 {
			r = r*6364136223846793005 + 1442695040888963407
			return clampFinite(float64(int32(r>>33)) / (1 << 16))
		}
		for i := range a.Data {
			a.Data[i] = next()
		}
		for i := range b.Data {
			b.Data[i] = next()
		}
		got, err := MatMulChecked(a, b)
		if err != nil {
			t.Fatalf("conformable shapes rejected: %v", err)
		}
		want := MatMulRef(a, b)
		if !Equal(got, want, 0) {
			t.Fatalf("MatMul != reference at %dx%dx%d", m, k, n)
		}
		// Mismatched inner dimension must error, not panic.
		if k != n {
			if _, err := MatMulChecked(a, New(n, k)); err == nil {
				t.Fatalf("inner mismatch accepted at %dx%dx%d", m, k, n)
			}
		}
		// Batched path over two identical slices.
		if m > 0 && k > 0 && n > 0 {
			ab := New(2, m, k)
			bb := New(2, k, n)
			copy(ab.Data[:m*k], a.Data)
			copy(ab.Data[m*k:], a.Data)
			copy(bb.Data[:k*n], b.Data)
			copy(bb.Data[k*n:], b.Data)
			bout, err := BatMulChecked(ab, bb)
			if err != nil {
				t.Fatalf("BatMul rejected positive shapes: %v", err)
			}
			for s := 0; s < 2; s++ {
				slice := bout.Data[s*m*n : (s+1)*m*n]
				for i := range slice {
					if slice[i] != want.Data[i] {
						t.Fatalf("BatMul slice %d != reference at %dx%dx%d", s, m, k, n)
					}
				}
			}
		} else if _, err := BatMulChecked(New(2, m, k), New(2, k, n)); err == nil {
			t.Fatalf("BatMul accepted degenerate %dx%dx%d", m, k, n)
		}
	})
}

func FuzzIm2ColGeom(f *testing.F) {
	// Seeds include the geometry that used to panic with an integer
	// divide-by-zero (Stride=0) before ConvGeom.Validate existed, plus
	// negative padding and kernels larger than the padded input.
	f.Add(1, 4, 4, 3, 3, 1, 1)
	f.Add(2, 5, 5, 3, 3, 2, 0)
	f.Add(1, 4, 4, 3, 3, 0, 1)  // Stride=0: the historical panic
	f.Add(1, 4, 4, 3, 3, 1, -1) // negative padding
	f.Add(1, 2, 2, 5, 5, 1, 0)  // kernel exceeds input
	f.Add(3, 1, 1, 1, 1, 1, 0)
	f.Fuzz(func(t *testing.T, c, h, w, kh, kw, stride, pad int) {
		if c < -4 || c > 4 || h < -8 || h > 8 || w < -8 || w > 8 ||
			kh < -8 || kh > 8 || kw < -8 || kw > 8 ||
			stride < -4 || stride > 4 || pad < -4 || pad > 4 {
			t.Skip()
		}
		g := ConvGeom{InC: c, InH: h, InW: w, KH: kh, KW: kw, Stride: stride, Pad: pad}
		verr := g.Validate()
		var in *Tensor
		if c > 0 && h > 0 && w > 0 {
			in = New(2, c, h, w)
			for i := range in.Data {
				in.Data[i] = float64(i%13) - 6
			}
		} else {
			in = New(2, 1, 1, 1)
		}
		cols, err := Im2ColChecked(in, g)
		if verr != nil {
			// An invalid geometry must be refused with a typed error.
			if err == nil {
				t.Fatalf("invalid geometry %+v accepted", g)
			}
			if AsError(err) == nil {
				t.Fatalf("error for %+v is not a typed *tensor.Error", g)
			}
			return
		}
		if err != nil {
			// Valid geometry, but the input may not match it.
			if AsError(err) == nil {
				t.Fatalf("error for %+v is not a typed *tensor.Error", g)
			}
			return
		}
		// A successful lowering must round-trip through Col2Im without
		// panicking and keep the documented shape.
		oh, ow := g.OutH(), g.OutW()
		if cols.Dim(0) != 2*oh*ow || cols.Dim(1) != c*kh*kw {
			t.Fatalf("cols shape %v for %+v", cols.Shape(), g)
		}
		Col2Im(cols, 2, g)
		// Im2ColInto with a matching scratch reuses it and must agree.
		scratch := New(cols.Dim(0), cols.Dim(1))
		got := Im2ColInto(scratch, in, g)
		if got != scratch {
			t.Fatalf("Im2ColInto did not reuse matching scratch for %+v", g)
		}
		if !Equal(got, cols, 0) {
			t.Fatalf("Im2ColInto != Im2Col for %+v", g)
		}
	})
}
