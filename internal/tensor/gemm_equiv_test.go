package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// The kernel-equivalence suite: every faster tier of the GEMM hierarchy is
// pinned to the serial float64 reference — bit-exactly for the f64 tiers,
// within bounded ULP error for the f32 tier — across the edge shapes that
// exercise tile remainders, single rows, and degenerate dimensions.

// equivShapes covers 1×1, m=1, tile-multiple and non-multiple dims, the
// AVX 8-row boundary, and shapes spanning the usePacked threshold.
var equivShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 5},
	{2, 3, 4},
	{4, 4, 4},
	{5, 5, 5},
	{7, 9, 3},
	{8, 8, 8},
	{8, 33, 4},
	{9, 17, 9},
	{12, 64, 12},
	{16, 16, 16},
	{17, 31, 13},
	{23, 64, 41},
	{32, 32, 32},
	{33, 65, 29},
	{48, 100, 48},
	{64, 64, 64},
	{65, 129, 67},
	{129, 65, 33},
}

func randMat(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func TestGEMMTiersMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, s := range equivShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		ref := MatMulRef(a, b)
		if got := MatMulTiled(a, b); !Equal(got, ref, 0) {
			t.Errorf("tiled != reference at %dx%dx%d", s.m, s.k, s.n)
		}
		if got := MatMul(a, b); !Equal(got, ref, 0) {
			t.Errorf("auto != reference at %dx%dx%d", s.m, s.k, s.n)
		}
	}
}

func TestTransposedKernelsMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, s := range equivShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		ref := MatMulRef(a, b)
		// a · (bᵀ)ᵀ through the fused TransB path.
		if got := MatMulTransB(a, Transpose(b)); !Equal(got, ref, 0) {
			t.Errorf("TransB != reference at %dx%dx%d", s.m, s.k, s.n)
		}
		// (aᵀ)ᵀ · b through the fused TransA path. The large-shape tier
		// re-enters the packed MatMul after an exact transpose, so it too
		// must be bit-identical.
		if got := MatMulTransA(Transpose(a), b); !Equal(got, ref, 0) {
			t.Errorf("TransA != reference at %dx%dx%d", s.m, s.k, s.n)
		}
	}
}

func TestBatMulSlicesMatchMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, s := range []struct{ bt, m, k, n int }{
		{1, 1, 1, 1},
		{2, 5, 7, 3},
		{3, 8, 33, 4},
		{4, 17, 31, 13},
		{2, 64, 64, 64},
		{5, 33, 65, 29},
	} {
		a := New(s.bt, s.m, s.k)
		b := New(s.bt, s.k, s.n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		got := BatMul(a, b)
		for i := 0; i < s.bt; i++ {
			av := FromSlice(a.Data[i*s.m*s.k:(i+1)*s.m*s.k], s.m, s.k)
			bv := FromSlice(b.Data[i*s.k*s.n:(i+1)*s.k*s.n], s.k, s.n)
			want := MatMulRef(av, bv)
			slice := FromSlice(got.Data[i*s.m*s.n:(i+1)*s.m*s.n], s.m, s.n)
			if !Equal(slice, want, 0) {
				t.Errorf("BatMul slice %d != MatMul at %+v", i, s)
			}
		}
	}
}

func TestBatMulRejectsDegenerateShapes(t *testing.T) {
	for _, s := range []struct{ a, b []int }{
		{[]int{0, 2, 3}, []int{0, 3, 2}}, // zero batch
		{[]int{2, 0, 3}, []int{2, 3, 2}}, // zero rows
		{[]int{2, 2, 0}, []int{2, 0, 2}}, // k = 0
		{[]int{2, 2, 3}, []int{2, 3, 0}}, // zero cols
	} {
		if _, err := BatMulChecked(New(s.a...), New(s.b...)); err == nil {
			t.Errorf("BatMulChecked(%v, %v): expected error", s.a, s.b)
		} else if AsError(err) == nil {
			t.Errorf("BatMulChecked(%v, %v): error is not a typed *tensor.Error", s.a, s.b)
		}
	}
	// Rank and conformability errors stay typed too.
	if _, err := BatMulChecked(New(2, 2), New(2, 2, 2)); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := BatMulChecked(New(2, 2, 3), New(3, 3, 2)); err == nil {
		t.Error("batch mismatch accepted")
	}
	if _, err := BatMulChecked(New(2, 2, 3), New(2, 4, 2)); err == nil {
		t.Error("inner mismatch accepted")
	}
}

// MatMul keeps the historical k=0 semantics (a well-formed empty
// contraction yields zeros) even though BatMul rejects it.
func TestMatMulKZeroYieldsZeros(t *testing.T) {
	out := MatMul(New(3, 0), New(0, 4))
	if out.Dim(0) != 3 || out.Dim(1) != 4 || out.AbsMax() != 0 {
		t.Fatalf("k=0 product: %v", out)
	}
}

// The f32 tier tracks the float64 reference within bounded relative error:
// each output element is a k-term float32 dot product, so the error is
// bounded by ~k·eps32 relative to the accumulated magnitude.
func TestFloat32TierBoundedULP(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, s := range equivShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		ref := MatMulRef(a, b)
		got := MatMul32(ToFloat32(a), ToFloat32(b))
		const eps32 = 1.1920929e-07
		// |Σ aᵢbᵢ| can cancel, so bound against the magnitude sum.
		mags := MatMulRef(Apply(a, math.Abs), Apply(b, math.Abs))
		for i := range ref.Data {
			bound := (float64(s.k)+2)*eps32*mags.Data[i] + 1e-30
			if d := math.Abs(float64(got.Data[i]) - ref.Data[i]); d > bound {
				t.Fatalf("f32 error %g exceeds bound %g at %dx%dx%d elem %d",
					d, bound, s.m, s.k, s.n, i)
			}
		}
	}
}

// Both f32 paths (packed and reference) must agree with each other
// bit-exactly, same contract as the f64 tiers.
func TestFloat32PathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	a32 := ToFloat32(randMat(rng, 33, 65))
	b32 := ToFloat32(randMat(rng, 65, 29))
	packed := MatMul32(a32, b32) // usePacked(33, 65, 29) is true
	// Force the reference loop by slicing into small products.
	for i := 0; i < 33; i++ {
		row := &Tensor32{shape: []int{1, 65}, Data: a32.Data[i*65 : (i+1)*65]}
		want := MatMul32(row, b32) // 1 row -> reference loop
		for j := 0; j < 29; j++ {
			if packed.Data[i*29+j] != want.Data[j] {
				t.Fatalf("f32 packed != f32 reference at (%d,%d)", i, j)
			}
		}
	}
}

func TestMatMul32ShapeErrors(t *testing.T) {
	if _, err := MatMul32Checked(New32(2, 3), New32(4, 2)); err == nil {
		t.Fatal("inner mismatch accepted")
	}
	if _, err := MatMul32Checked(New32(2), New32(2, 2)); err == nil {
		t.Fatal("rank mismatch accepted")
	}
}

func TestTensor32Conversions(t *testing.T) {
	src := FromSlice([]float64{1.5, -2.25, 0, 3e30}, 2, 2)
	t32 := ToFloat32(src)
	back := t32.ToFloat64()
	for i, v := range src.Data {
		if back.Data[i] != float64(float32(v)) {
			t.Fatalf("round-trip elem %d: %g", i, back.Data[i])
		}
	}
	if t32.Rank() != 2 || t32.Dim(1) != 2 || t32.Size() != 4 {
		t.Fatal("Tensor32 accessors")
	}
	if got := t32.ArgMaxRow(1); got != 1 {
		t.Fatalf("ArgMaxRow: %d", got)
	}
}

// Inf/NaN inputs are outside the bit-exactness contract, but every tier
// must still be deterministic: the same call twice gives the same bits.
func TestNonFiniteDeterministicPerTier(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	a := randMat(rng, 16, 32)
	b := randMat(rng, 32, 16)
	a.Data[5] = math.Inf(1)
	b.Data[7] = math.NaN()
	x := MatMulTiled(a, b)
	y := MatMulTiled(a, b)
	for i := range x.Data {
		if math.Float64bits(x.Data[i]) != math.Float64bits(y.Data[i]) {
			t.Fatalf("tiled kernel nondeterministic at %d", i)
		}
	}
}
