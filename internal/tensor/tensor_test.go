package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.Rank() != 2 {
		t.Fatalf("got size=%d rank=%d", x.Size(), x.Rank())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestFromSliceAndAtSet(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	if got := x.At(1, 2); got != 6 {
		t.Fatalf("At(1,2)=%g, want 6", got)
	}
	x.Set(9, 0, 1)
	if got := x.At(0, 1); got != 9 {
		t.Fatalf("Set/At mismatch: %g", got)
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestReshape(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	if y.At(2, 1) != 6 {
		t.Fatalf("reshape value mismatch: %g", y.At(2, 1))
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
	// Reshape shares data.
	y.Set(42, 0, 0)
	if x.At(0, 0) != 42 {
		t.Fatal("reshape did not share data")
	}
}

func TestReshapeBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(2, 3).Reshape(4, 2)
}

func TestCloneIndependent(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := x.Clone()
	y.Data[0] = 7
	if x.Data[0] != 1 {
		t.Fatal("clone shares data")
	}
}

func TestAddSubMulDiv(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{4, 3, 2, 1}, 2, 2)
	if got := Add(a, b).Data; got[0] != 5 || got[3] != 5 {
		t.Fatalf("Add: %v", got)
	}
	if got := Sub(a, b).Data; got[0] != -3 || got[3] != 3 {
		t.Fatalf("Sub: %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 6 {
		t.Fatalf("Mul: %v", got)
	}
	if got := Div(a, b).Data; got[3] != 4 {
		t.Fatalf("Div: %v", got)
	}
}

func TestMatMulHandComputed(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d]=%g, want %g", i, c.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(New(2, 3), New(2, 3))
}

func TestMatMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := RandNormal(rng, 0, 1, 4, 5)
	b := RandNormal(rng, 0, 1, 5, 3)
	ref := MatMul(a, b)
	viaTransB := MatMulTransB(a, Transpose(b))
	if !Equal(ref, viaTransB, 1e-12) {
		t.Fatal("MatMulTransB disagrees with MatMul")
	}
	viaTransA := MatMulTransA(Transpose(a), b)
	if !Equal(ref, viaTransA, 1e-12) {
		t.Fatal("MatMulTransA disagrees with MatMul")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Dim(0) != 3 || at.Dim(1) != 2 || at.At(2, 1) != 6 {
		t.Fatalf("transpose wrong: %v", at)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-1, 2, -3, 4}, 4)
	if x.Sum() != 2 {
		t.Fatalf("Sum=%g", x.Sum())
	}
	if x.Mean() != 0.5 {
		t.Fatalf("Mean=%g", x.Mean())
	}
	if x.Max() != 4 || x.Min() != -3 || x.AbsMax() != 4 {
		t.Fatalf("Max/Min/AbsMax = %g/%g/%g", x.Max(), x.Min(), x.AbsMax())
	}
	if got := x.Norm2(); math.Abs(got-math.Sqrt(30)) > 1e-12 {
		t.Fatalf("Norm2=%g", got)
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float64{0.1, 0.9, 0.5, 0.3, 0.3, 0.2}, 2, 3)
	if x.ArgMaxRow(0) != 1 {
		t.Fatalf("row 0 argmax = %d", x.ArgMaxRow(0))
	}
	// Ties break low.
	if x.ArgMaxRow(1) != 0 {
		t.Fatalf("row 1 argmax = %d", x.ArgMaxRow(1))
	}
}

func TestSumRowsAndAddRowVector(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	s := SumRows(x)
	if s.Dim(0) != 1 || s.Data[0] != 5 || s.Data[2] != 9 {
		t.Fatalf("SumRows = %v", s.Data)
	}
	v := FromSlice([]float64{10, 20, 30}, 1, 3)
	y := AddRowVector(x, v)
	if y.At(1, 2) != 36 || y.At(0, 0) != 11 {
		t.Fatalf("AddRowVector = %v", y.Data)
	}
}

func TestInPlaceOps(t *testing.T) {
	x := FromSlice([]float64{1, 2}, 2)
	y := FromSlice([]float64{10, 20}, 2)
	x.AddInPlace(y)
	if x.Data[1] != 22 {
		t.Fatalf("AddInPlace: %v", x.Data)
	}
	x.AxpyInPlace(0.5, y)
	if x.Data[0] != 16 {
		t.Fatalf("AxpyInPlace: %v", x.Data)
	}
	x.ScaleInPlace(2)
	if x.Data[0] != 32 {
		t.Fatalf("ScaleInPlace: %v", x.Data)
	}
	x.Fill(3)
	if x.Data[1] != 3 {
		t.Fatalf("Fill: %v", x.Data)
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := RandUniform(rng, -2, 2, 100, 10)
	if u.Max() > 2 || u.Min() < -2 {
		t.Fatalf("uniform out of range: [%g, %g]", u.Min(), u.Max())
	}
	x := XavierInit(rng, 64, 64)
	limit := math.Sqrt(6.0 / 128.0)
	if x.AbsMax() > limit {
		t.Fatalf("xavier out of range: %g > %g", x.AbsMax(), limit)
	}
	h := HeInit(rng, 1000, 100)
	std := math.Sqrt(2.0 / 1000.0)
	// Sample std should be near theoretical std.
	var ss float64
	for _, v := range h.Data {
		ss += v * v
	}
	sample := math.Sqrt(ss / float64(h.Size()))
	if math.Abs(sample-std)/std > 0.1 {
		t.Fatalf("He std %g far from %g", sample, std)
	}
}

// Property: Add is commutative, Sub(Add(a,b),b) == a.
func TestAddPropertiesQuick(t *testing.T) {
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			// Skip values whose sums would overflow or lose all precision.
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				return true
			}
		}
		a := FromSlice(append([]float64(nil), vals...), len(vals))
		b := Scale(0.5, a)
		if !Equal(Add(a, b), Add(b, a), 0) {
			return false
		}
		// (a+b)-b ≈ a within float tolerance.
		return Equal(Sub(Add(a, b), b), a, 1e-9*math.Max(1, a.AbsMax()))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: A(B+C) = AB + AC.
func TestMatMulDistributiveQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		c := RandNormal(rng, 0, 1, k, n)
		left := MatMul(a, Add(b, c))
		right := Add(MatMul(a, b), MatMul(a, c))
		if !Equal(left, right, 1e-9) {
			t.Fatalf("distributivity failed at m=%d k=%d n=%d", m, k, n)
		}
	}
}

// Property: Transpose is an involution and (AB)ᵀ = BᵀAᵀ.
func TestTransposePropertiesQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		if !Equal(Transpose(Transpose(a)), a, 0) {
			t.Fatal("transpose not involutive")
		}
		if !Equal(Transpose(MatMul(a, b)), MatMul(Transpose(b), Transpose(a)), 1e-9) {
			t.Fatal("(AB)ᵀ != BᵀAᵀ")
		}
	}
}
