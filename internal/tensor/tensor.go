// Package tensor implements a small dense tensor library used throughout
// dlsys. Tensors are row-major, contiguous float64 arrays with an explicit
// shape. The package provides the algebra needed by the neural-network
// engine: element-wise arithmetic, matrix multiplication, reductions,
// broadcasting over the leading axis, and im2col-based convolution support.
//
// Everything is pure Go and deterministic; random initialisation takes an
// explicit *rand.Rand.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense, row-major, contiguous array of float64 values with an
// explicit shape. The zero value is not usable; construct tensors with New,
// FromSlice, or one of the random initialisers.
type Tensor struct {
	shape []int
	// Data holds the elements in row-major order. It is exported so hot
	// loops (optimizers, codecs) can operate on the raw slice without
	// per-element bounds checks through At/Set.
	Data []float64
}

// New returns a zero-filled tensor with the given shape. It panics (with a
// typed *Error) if any dimension is negative or the shape is empty.
func New(shape ...int) *Tensor {
	n, err := checkShape(shape)
	must(err)
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// NewChecked is New returning an error instead of panicking, for shapes
// that come from untrusted input.
func NewChecked(shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}, nil
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); it panics if len(data) does not match the shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	return mustT(FromSliceChecked(data, shape...))
}

// FromSliceChecked is FromSlice returning an error instead of panicking.
func FromSliceChecked(data []float64, shape ...int) (*Tensor, error) {
	n, err := checkShape(shape)
	if err != nil {
		return nil, err
	}
	if len(data) != n {
		return nil, errf("FromSlice", "data length %d does not match shape %v (need %d)", len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: data}, nil
}

// Full returns a tensor of the given shape with every element set to v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

func checkShape(shape []int) (int, error) {
	if len(shape) == 0 {
		return 0, errf("New", "empty shape")
	}
	n := 1
	for _, d := range shape {
		if d < 0 {
			return 0, errf("New", "negative dimension in shape %v", shape)
		}
		n *= d
	}
	return n, nil
}

// Shape returns the tensor's dimensions. The returned slice must not be
// modified.
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Size returns the total number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	return true
}

// offset computes the flat index for the given multi-axis index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		panic(errf("At", "index %v does not match rank %d", idx, len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(errf("At", "index %v out of bounds for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the given multi-axis index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-axis index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape of the same
// total size. One dimension may be -1, in which case it is inferred.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	return mustT(t.ReshapeChecked(shape...))
}

// ReshapeChecked is Reshape returning an error instead of panicking.
func (t *Tensor) ReshapeChecked(shape ...int) (*Tensor, error) {
	out := append([]int(nil), shape...)
	infer := -1
	known := 1
	for i, d := range out {
		if d == -1 {
			if infer >= 0 {
				return nil, errf("Reshape", "at most one -1 dimension")
			}
			infer = i
		} else {
			known *= d
		}
	}
	if infer >= 0 {
		if known == 0 || len(t.Data)%known != 0 {
			return nil, errf("Reshape", "cannot infer dimension reshaping %v to %v", t.shape, shape)
		}
		out[infer] = len(t.Data) / known
	}
	if n, err := checkShape(out); err != nil {
		return nil, err
	} else if n != len(t.Data) {
		return nil, errf("Reshape", "cannot reshape %v (size %d) to %v", t.shape, len(t.Data), shape)
	}
	return &Tensor{shape: out, Data: t.Data}, nil
}

// Row returns a view of row i of a rank-2 tensor as a slice.
func (t *Tensor) Row(i int) []float64 {
	if len(t.shape) != 2 {
		panic(errf("Row", "requires rank 2, got %v", t.shape))
	}
	c := t.shape[1]
	return t.Data[i*c : (i+1)*c]
}

// CopyFrom copies u's data into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(u *Tensor) {
	must(checkSameShape("CopyFrom", t, u))
	copy(t.Data, u.Data)
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element of t to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// String renders small tensors fully and large tensors as a summary.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v", t.shape)
	if len(t.Data) <= 16 {
		fmt.Fprintf(&b, "%v", t.Data)
	} else {
		fmt.Fprintf(&b, "[%g %g %g ... %g]", t.Data[0], t.Data[1], t.Data[2], t.Data[len(t.Data)-1])
	}
	return b.String()
}
