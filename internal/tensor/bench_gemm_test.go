package tensor

import (
	"math/rand"
	"strconv"
	"testing"
	"time"
)

// BenchmarkGEMM sweeps the kernel hierarchy across the sizes the
// acceptance gate tracks: 64 (below the packing threshold at the margin),
// 256 (packed, at the parallel threshold), and 1024 (fully blocked).
func BenchmarkGEMM(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		rng := rand.New(rand.NewSource(int64(n)))
		x := RandNormal(rng, 0, 1, n, n)
		y := RandNormal(rng, 0, 1, n, n)
		flops := 2 * float64(n) * float64(n) * float64(n)
		b.Run(kindSize("naive", n), func(b *testing.B) {
			out := New(n, n)
			for i := 0; i < b.N; i++ {
				out.Zero()
				matMulRows(x, y, out, 0, n)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
		b.Run(kindSize("tiled", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMulTiled(x, y)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
		b.Run(kindSize("auto", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MatMul(x, y)
			}
			b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

func kindSize(kind string, n int) string {
	return kind + "/" + strconv.Itoa(n)
}

// BenchmarkBatMul measures the batched kernel against per-slice MatMul.
func BenchmarkBatMul(b *testing.B) {
	const bt, n = 8, 128
	rng := rand.New(rand.NewSource(8))
	x := New(bt, n, n)
	y := New(bt, n, n)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for i := range y.Data {
		y.Data[i] = rng.NormFloat64()
	}
	b.Run("batched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BatMul(x, y)
		}
	})
	b.Run("per-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for s := 0; s < bt; s++ {
				av := FromSlice(x.Data[s*n*n:(s+1)*n*n], n, n)
				bv := FromSlice(y.Data[s*n*n:(s+1)*n*n], n, n)
				MatMul(av, bv)
			}
		}
	})
}

// TestTiledNotSlowerThanNaive is the benchmark guardrail: at 1024³ the
// tiled kernel must never regress below the naive loop. It measures one
// timed pass of each (the difference the gate protects is large — the
// tiled kernel is several times faster — so a single pass with a 1.1x
// grace factor is decisive and keeps the test cheap).
func TestTiledNotSlowerThanNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short mode")
	}
	const n = 1024
	rng := rand.New(rand.NewSource(13))
	a := RandNormal(rng, 0, 1, n, n)
	b := RandNormal(rng, 0, 1, n, n)

	out := New(n, n)
	t0 := time.Now()
	matMulRows(a, b, out, 0, n)
	naive := time.Since(t0)

	t0 = time.Now()
	tiled := MatMulTiled(a, b)
	tiledD := time.Since(t0)

	if !Equal(tiled, out, 0) {
		t.Fatal("tiled kernel diverges from naive at 1024^3")
	}
	if float64(tiledD) > 1.1*float64(naive) {
		t.Fatalf("tiled kernel slower than naive at 1024^3: tiled %v vs naive %v", tiledD, naive)
	}
	t.Logf("1024^3: naive %v, tiled %v (%.2fx)", naive, tiledD, float64(naive)/float64(tiledD))
}
