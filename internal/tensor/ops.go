package tensor

import "math"

// Add returns t + u element-wise. Shapes must match.
func Add(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a + b }) }

// Sub returns t - u element-wise. Shapes must match.
func Sub(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a - b }) }

// Mul returns the element-wise (Hadamard) product t ⊙ u. Shapes must match.
func Mul(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a * b }) }

// Div returns t / u element-wise. Shapes must match.
func Div(t, u *Tensor) *Tensor { return zipNew(t, u, func(a, b float64) float64 { return a / b }) }

func zipNew(t, u *Tensor, f func(a, b float64) float64) *Tensor {
	must(checkSameShape("zip", t, u))
	out := New(t.shape...)
	for i := range t.Data {
		out.Data[i] = f(t.Data[i], u.Data[i])
	}
	return out
}

// AddInPlace adds u into t element-wise.
func (t *Tensor) AddInPlace(u *Tensor) {
	must(checkSameShape("AddInPlace", t, u))
	for i := range t.Data {
		t.Data[i] += u.Data[i]
	}
}

// AxpyInPlace computes t += alpha*u element-wise.
func (t *Tensor) AxpyInPlace(alpha float64, u *Tensor) {
	must(checkSameShape("AxpyInPlace", t, u))
	for i := range t.Data {
		t.Data[i] += alpha * u.Data[i]
	}
}

// Scale returns alpha * t.
func Scale(alpha float64, t *Tensor) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = alpha * v
	}
	return out
}

// ScaleInPlace multiplies every element of t by alpha.
func (t *Tensor) ScaleInPlace(alpha float64) {
	for i := range t.Data {
		t.Data[i] *= alpha
	}
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float64) float64) *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of t.
func (t *Tensor) ApplyInPlace(f func(float64) float64) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// MatMul returns the matrix product of two rank-2 tensors: (m×k)·(k×n) → m×n.
// Small products run the serial reference kernel; products worth blocking
// run the cache-tiled packed kernel (gemm.go), partitioned across the
// persistent worker pool once they cross the parallel threshold. Every
// tier accumulates each output element in the same ascending-k order, so
// for finite inputs all paths are bit-identical to the reference kernel.
func MatMul(a, b *Tensor) *Tensor { return mustT(MatMulChecked(a, b)) }

// MatMulChecked is MatMul returning an error instead of panicking on a
// shape mismatch.
func MatMulChecked(a, b *Tensor) (*Tensor, error) {
	out, err := matMulNew("MatMul", a, b)
	if err != nil {
		return nil, err
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if usePacked(m, k, n) {
		bp := getScratch(k * n)
		packB(b, bp)
		gemmAuto(a.Data, m, k, n, bp, out.Data)
		putScratch(bp)
		return out, nil
	}
	if int64(m)*int64(n)*int64(k) >= parallelFLOPThreshold && m >= 2 {
		parallelRows(m, func(lo, hi int) {
			matMulRows(a, b, out, lo, hi)
		})
		return out, nil
	}
	matMulRows(a, b, out, 0, m)
	return out, nil
}

// matMulRows computes output rows [lo, hi) of a·b into out. It is the
// reference kernel of the GEMM hierarchy (see gemm.go): i-k-j order, one
// memory accumulator per output element, ascending k.
func matMulRows(a, b, out *Tensor, lo, hi int) {
	k, n := a.shape[1], b.shape[1]
	for i := lo; i < hi; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}

// MatMulTransB returns a · bᵀ for rank-2 tensors: (m×k)·(n×k)ᵀ → m×n.
// Used by backward passes to avoid materialising transposes. Large
// products run fused through the tiled engine: the packing pass reads b's
// rows directly (they are already the columns the kernel wants), so the
// transpose is free.
func MatMulTransB(a, b *Tensor) *Tensor { return mustT(MatMulTransBChecked(a, b)) }

// MatMulTransBChecked is MatMulTransB returning an error instead of
// panicking on a shape mismatch.
func MatMulTransBChecked(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, errf("MatMulTransB", "requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, errf("MatMulTransB", "inner dimension mismatch %v · %vᵀ", a.shape, b.shape)
	}
	out := New(m, n)
	if usePacked(m, k, n) {
		bp := getScratch(k * n)
		packBTrans(b, bp)
		gemmAuto(a.Data, m, k, n, bp, out.Data)
		putScratch(bp)
		return out, nil
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := b.Data[j*k : (j+1)*k]
			var s float64
			for p := 0; p < k; p++ {
				s += arow[p] * brow[p]
			}
			orow[j] = s
		}
	}
	return out, nil
}

// MatMulTransA returns aᵀ · b for rank-2 tensors: (k×m)ᵀ·(k×n) → m×n.
// Large products run through the tiled engine after materialising aᵀ (an
// exact element move costing O(k·m), negligible against the O(m·k·n)
// product it unlocks).
func MatMulTransA(a, b *Tensor) *Tensor { return mustT(MatMulTransAChecked(a, b)) }

// MatMulTransAChecked is MatMulTransA returning an error instead of
// panicking on a shape mismatch.
func MatMulTransAChecked(a, b *Tensor) (*Tensor, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, errf("MatMulTransA", "requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		return nil, errf("MatMulTransA", "inner dimension mismatch %vᵀ · %v", a.shape, b.shape)
	}
	if usePacked(m, k, n) {
		return MatMulChecked(Transpose(a), b)
	}
	out := New(m, n)
	for p := 0; p < k; p++ {
		arow := a.Data[p*m : (p+1)*m]
		brow := b.Data[p*n : (p+1)*n]
		for i := 0; i < m; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			orow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(errf("Transpose", "requires rank 2, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Max returns the largest element. It panics on an empty tensor.
func (t *Tensor) Max() float64 {
	if len(t.Data) == 0 {
		panic(errf("Max", "empty tensor"))
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the smallest element. It panics on an empty tensor.
func (t *Tensor) Min() float64 {
	if len(t.Data) == 0 {
		panic(errf("Min", "empty tensor"))
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns the largest absolute value, or 0 for an empty tensor.
func (t *Tensor) AbsMax() float64 {
	var m float64
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean (Frobenius) norm.
func (t *Tensor) Norm2() float64 {
	var s float64
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMaxRow returns the index of the maximum value in row i of a rank-2
// tensor, breaking ties toward the lower index.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// SumRows reduces a rank-2 tensor over its rows, returning a 1×n tensor
// where out[j] = Σ_i t[i,j]. Used for bias gradients.
func SumRows(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic(errf("SumRows", "requires rank 2, got %v", t.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(1, n)
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// AddRowVector adds a 1×n row vector to every row of an m×n tensor,
// returning a new tensor (broadcast over the leading axis).
func AddRowVector(t, v *Tensor) *Tensor {
	if t.Rank() != 2 || v.Rank() != 2 || v.shape[0] != 1 || v.shape[1] != t.shape[1] {
		panic(errf("AddRowVector", "shapes %v, %v", t.shape, v.shape))
	}
	m, n := t.shape[0], t.shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		orow := out.Data[i*n : (i+1)*n]
		for j := range row {
			orow[j] = row[j] + v.Data[j]
		}
	}
	return out
}

// Equal reports whether t and u have the same shape and all elements are
// within tol of each other.
func Equal(t, u *Tensor, tol float64) bool {
	if !t.SameShape(u) {
		return false
	}
	for i := range t.Data {
		if math.Abs(t.Data[i]-u.Data[i]) > tol {
			return false
		}
	}
	return true
}
