package tensor

import "fmt"

// Error is the typed value every tensor invariant violation carries. The
// package's algebra keeps its panicking API for programming errors (shape
// mismatches are bugs, like out-of-range slice indexing), but the panic
// value is now always a *tensor.Error, so API boundaries that must survive
// corrupted or adversarial inputs — the pipeline's stage runner, the
// training guard — can convert it into a returned error with Guard or
// AsError instead of crashing the process. Fallible entry points that
// commonly receive untrusted data additionally have Checked variants
// returning errors directly.
type Error struct {
	Op  string // the operation that failed, e.g. "MatMul"
	Msg string
}

// Error implements error.
func (e *Error) Error() string { return "tensor: " + e.Op + ": " + e.Msg }

// errf builds a typed tensor error.
func errf(op, format string, args ...any) *Error {
	return &Error{Op: op, Msg: fmt.Sprintf(format, args...)}
}

// must panics with the typed error when err is non-nil.
func must(err error) {
	if err != nil {
		panic(err)
	}
}

// mustT returns t, panicking with the typed error when err is non-nil.
func mustT(t *Tensor, err error) *Tensor {
	must(err)
	return t
}

// checkSameShape returns a typed error when t and u differ in shape.
func checkSameShape(op string, t, u *Tensor) error {
	if !t.SameShape(u) {
		return errf(op, "shape mismatch %v vs %v", t.shape, u.shape)
	}
	return nil
}

// AsError converts a recovered panic value from a tensor operation into an
// error. Non-tensor panic values are re-raised: only invariant violations
// this package itself detected are safe to translate.
func AsError(recovered any) error {
	if recovered == nil {
		return nil
	}
	if te, ok := recovered.(*Error); ok {
		return te
	}
	panic(recovered)
}

// Guard converts a tensor invariant panic into a returned error:
//
//	func f(...) (err error) {
//	    defer tensor.Guard(&err)
//	    ... tensor algebra on untrusted shapes ...
//	}
//
// Panics that did not originate from a tensor invariant propagate.
func Guard(err *error) {
	if r := recover(); r != nil {
		*err = AsError(r)
	}
}
