package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Property-based tests: each pins an algebraic identity over randomized
// shapes, values, and seeds rather than hand-picked fixtures. The seeds are
// fixed so failures replay; the shape ranges are small enough to keep the
// whole file in milliseconds but large enough to hit degenerate dims
// (1-wide matrices, empty-ish vectors, padding-only patches).

// (A·B)·C == A·(B·C) within floating-point tolerance, across random
// conforming shapes. The two orderings accumulate in different sequences,
// so exact equality is not expected — but the drift must stay at rounding
// scale, which also guards against indexing bugs that produce plausible
// but wrong values.
func TestMatMulAssociativityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		m, k, l, p := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, l)
		c := RandNormal(rng, 0, 1, l, p)
		left := MatMul(MatMul(a, b), c)
		right := MatMul(a, MatMul(b, c))
		if !Equal(left, right, 1e-9) {
			t.Fatalf("trial %d: (AB)C != A(BC) for dims %dx%d·%dx%d·%dx%d", trial, m, k, k, l, l, p)
		}
	}
}

// Transpose is an involution (exactly — it only moves elements), and the
// fused transposed multiplies must agree with the explicit transpose
// composition bit-for-bit: they visit the same products in the same order.
func TestTransposeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	for trial := 0; trial < 40; trial++ {
		m, k, n := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k, n)
		if !Equal(Transpose(Transpose(a)), a, 0) {
			t.Fatalf("trial %d: transpose is not an involution on %dx%d", trial, m, k)
		}
		if !Equal(MatMulTransA(Transpose(a), b), MatMul(a, b), 1e-12) {
			t.Fatalf("trial %d: MatMulTransA(Aᵀ,B) != A·B", trial)
		}
		if !Equal(MatMulTransB(a, Transpose(b)), MatMul(a, b), 1e-12) {
			t.Fatalf("trial %d: MatMulTransB(A,Bᵀ) != A·B", trial)
		}
	}
}

// The branch-light finite scans (the v-v != 0 trick plus four-wide
// unrolling) must agree with a naive math.IsNaN/IsInf scan on vectors with
// NaNs and ±Infs sprinkled at random positions — including positions inside
// and outside the unrolled prefix, and fully clean vectors.
func TestFiniteScansMatchNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1)}
	for trial := 0; trial < 200; trial++ {
		xs := make([]float64, rng.Intn(40))
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		for k := rng.Intn(4); k > 0 && len(xs) > 0; k-- {
			xs[rng.Intn(len(xs))] = bad[rng.Intn(len(bad))]
		}

		nanCt, infCt := 0, 0
		var sumSq float64
		for _, v := range xs {
			switch {
			case math.IsNaN(v):
				nanCt++
			case math.IsInf(v, 0):
				infCt++
			default:
				sumSq += v * v
			}
		}
		wantFinite := nanCt == 0 && infCt == 0

		if got := AllFinite(xs); got != wantFinite {
			t.Fatalf("trial %d: AllFinite=%v, naive scan says %v (%v)", trial, got, wantFinite, xs)
		}
		norm, finite := Norm2Finite(xs)
		if finite != wantFinite {
			t.Fatalf("trial %d: Norm2Finite finite=%v, want %v", trial, finite, wantFinite)
		}
		if want := math.Sqrt(sumSq); math.Abs(norm-want) > 1e-9*(1+want) {
			t.Fatalf("trial %d: Norm2Finite norm=%g, naive %g", trial, norm, want)
		}
		s := FiniteStats(xs)
		if s.Count != len(xs) || s.NaNs != nanCt || s.Infs != infCt || s.Finite() != wantFinite {
			t.Fatalf("trial %d: FiniteStats %+v, naive NaNs=%d Infs=%d", trial, s, nanCt, infCt)
		}
	}
}

// Every Checked constructor and operation must reject invalid shapes by
// returning a *tensor.Error — never by panicking and never by silently
// succeeding. The shapes are randomized so the mismatches land on many
// different dimension pairs.
func TestCheckedOpsRejectBadShapesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	expectErr := func(trial int, op string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("trial %d: %s accepted invalid shapes", trial, op)
		}
		if _, ok := err.(*Error); !ok {
			t.Fatalf("trial %d: %s returned %T, want *tensor.Error", trial, op, err)
		}
	}
	for trial := 0; trial < 60; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := RandNormal(rng, 0, 1, m, k)
		b := RandNormal(rng, 0, 1, k+1+rng.Intn(3), n)

		_, err := MatMulChecked(a, b)
		expectErr(trial, "MatMulChecked", err)
		_, err = MatMulTransAChecked(a, RandNormal(rng, 0, 1, m+1, n))
		expectErr(trial, "MatMulTransAChecked", err)
		_, err = MatMulTransBChecked(a, RandNormal(rng, 0, 1, n, k+1))
		expectErr(trial, "MatMulTransBChecked", err)

		_, err = NewChecked(m, -1-rng.Intn(3))
		expectErr(trial, "NewChecked", err)
		_, err = FromSliceChecked(make([]float64, m*k+1), m, k)
		expectErr(trial, "FromSliceChecked", err)
		_, err = a.ReshapeChecked(m*k+1+rng.Intn(5), 1)
		expectErr(trial, "ReshapeChecked", err)

		g := ConvGeom{InC: 2, InH: 4, InW: 4, KH: 2, KW: 2, Stride: 1, Pad: 0}
		expectErr(trial, "CheckInput", g.CheckInput(RandNormal(rng, 0, 1, 1, 3, 4, 4)))
	}

	// The panicking API must carry the same typed error, so Guard can
	// translate it at API boundaries instead of crashing the process.
	err := func() (err error) {
		defer Guard(&err)
		MatMul(RandNormal(rng, 0, 1, 2, 3), RandNormal(rng, 0, 1, 4, 2))
		return nil
	}()
	expectErr(0, "Guard(MatMul)", err)
}
