package tensor

import "math"

// This file provides the fast numerical-health scans the self-healing
// training supervisor (internal/guard) runs on every step: a branch-light
// all-finite check and a one-pass summary of where a vector's values live.
// Both exploit the identity v-v == 0 ⟺ v is finite (Inf-Inf and NaN-NaN
// are both NaN), which turns the per-element test into a single subtract
// and compare with no function calls in the hot loop.

// AllFinite reports whether every element of xs is finite (no NaN, no ±Inf).
// The loop is unrolled four wide; on an empty slice it returns true.
func AllFinite(xs []float64) bool {
	i := 0
	for ; i+4 <= len(xs); i += 4 {
		d0 := xs[i] - xs[i]
		d1 := xs[i+1] - xs[i+1]
		d2 := xs[i+2] - xs[i+2]
		d3 := xs[i+3] - xs[i+3]
		// Any non-finite input makes its difference NaN, and NaN != 0.
		if d0 != 0 || d1 != 0 || d2 != 0 || d3 != 0 {
			return false
		}
	}
	for ; i < len(xs); i++ {
		if d := xs[i] - xs[i]; d != 0 {
			return false
		}
	}
	return true
}

// AllFinite reports whether every element of the tensor is finite.
func (t *Tensor) AllFinite() bool { return AllFinite(t.Data) }

// Stats summarises the numerical health of a vector in one pass.
type Stats struct {
	Count int     // total elements scanned
	NaNs  int     // elements that were NaN
	Infs  int     // elements that were ±Inf
	Min   float64 // smallest finite value (0 when no finite values)
	Max   float64 // largest finite value (0 when no finite values)
	// AbsMax is the largest finite magnitude (0 when no finite values).
	AbsMax float64
}

// Finite reports whether the scanned vector contained no NaNs or Infs.
func (s Stats) Finite() bool { return s.NaNs == 0 && s.Infs == 0 }

// FiniteStats scans xs once, counting NaN/Inf occurrences and recording the
// finite value range. Detectors use the counts to classify corruption and
// the range to describe it deterministically.
func FiniteStats(xs []float64) Stats {
	s := Stats{Count: len(xs)}
	seen := false
	for _, v := range xs {
		if v-v != 0 { // non-finite
			if math.IsNaN(v) {
				s.NaNs++
			} else {
				s.Infs++
			}
			continue
		}
		if !seen {
			s.Min, s.Max = v, v
			seen = true
		} else if v < s.Min {
			s.Min = v
		} else if v > s.Max {
			s.Max = v
		}
		if a := math.Abs(v); a > s.AbsMax {
			s.AbsMax = a
		}
	}
	return s
}

// FiniteStats summarises the tensor's numerical health.
func (t *Tensor) FiniteStats() Stats { return FiniteStats(t.Data) }

// Norm2Finite returns the Euclidean norm of xs and whether every element is
// finite, in a single pass — the per-step gradient check needs both and
// must not walk the vector twice.
func Norm2Finite(xs []float64) (norm float64, finite bool) {
	var s float64
	finite = true
	for _, v := range xs {
		if v-v != 0 {
			finite = false
			continue
		}
		s += v * v
	}
	return math.Sqrt(s), finite
}
