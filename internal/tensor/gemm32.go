package tensor

import "sync"

// This file is the f32 tier of the kernel hierarchy (see gemm.go): an
// opt-in float32 storage mode for serving-side inference, where halving
// memory traffic matters more than the last bits of precision. The kernel
// structure mirrors the float64 engine — packed gemmNR-wide strips, a
// register micro-kernel sweeping the full k extent with one accumulator
// per output element — but accumulates in float32, so results track the
// float64 reference within bounded ULP error rather than bit-exactly.

// Tensor32 is a dense row-major float32 tensor. It is deliberately
// minimal: the serving path needs construction, conversion, matrix
// multiply, bias add, ReLU, and argmax — training stays float64.
type Tensor32 struct {
	shape []int
	Data  []float32
}

// New32 allocates a zeroed float32 tensor with the given shape.
func New32(shape ...int) *Tensor32 {
	size := 1
	for _, d := range shape {
		if d < 0 {
			panic(errf("New32", "negative dimension in %v", shape))
		}
		size *= d
	}
	return &Tensor32{shape: append([]int(nil), shape...), Data: make([]float32, size)}
}

// Shape returns the tensor's dimensions. The caller must not mutate it.
func (t *Tensor32) Shape() []int { return t.shape }

// Rank returns the number of dimensions.
func (t *Tensor32) Rank() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor32) Dim(i int) int { return t.shape[i] }

// Size returns the total element count.
func (t *Tensor32) Size() int { return len(t.Data) }

// Row returns row i of a rank-2 tensor as a shared slice.
func (t *Tensor32) Row(i int) []float32 {
	n := t.shape[1]
	return t.Data[i*n : (i+1)*n]
}

// ArgMaxRow returns the index of the maximum value in row i of a rank-2
// tensor, breaking ties toward the lower index (same contract as Tensor).
func (t *Tensor32) ArgMaxRow(i int) int {
	row := t.Row(i)
	best := 0
	for j := 1; j < len(row); j++ {
		if row[j] > row[best] {
			best = j
		}
	}
	return best
}

// ToFloat32 converts a float64 tensor to float32 storage, rounding each
// element once.
func ToFloat32(t *Tensor) *Tensor32 {
	out := New32(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = float32(v)
	}
	return out
}

// ToFloat64 widens back to float64 storage (exact: every float32 is
// representable as a float64).
func (t *Tensor32) ToFloat64() *Tensor {
	out := New(t.shape...)
	for i, v := range t.Data {
		out.Data[i] = float64(v)
	}
	return out
}

// scratchPool32 recycles float32 packing buffers, like scratchPool.
var scratchPool32 sync.Pool

func getScratch32(n int) []float32 {
	if v := scratchPool32.Get(); v != nil {
		if s := v.(*[]float32); cap(*s) >= n {
			return (*s)[:n]
		}
	}
	return make([]float32, n)
}

func putScratch32(s []float32) {
	scratchPool32.Put(&s)
}

// MatMul32 returns the float32 matrix product (m×k)·(k×n) → m×n.
func MatMul32(a, b *Tensor32) *Tensor32 {
	out, err := MatMul32Checked(a, b)
	must(err)
	return out
}

// MatMul32Checked is MatMul32 returning an error instead of panicking on a
// shape mismatch. Large products run the packed tiled kernel; small ones
// the i-k-j reference loop. Both accumulate each output element in float32
// over ascending k, so the two paths are bit-identical to each other and
// within bounded ULP error of the float64 reference.
func MatMul32Checked(a, b *Tensor32) (*Tensor32, error) {
	if a.Rank() != 2 || b.Rank() != 2 {
		return nil, errf("MatMul32", "requires rank-2 operands, got %v and %v", a.shape, b.shape)
	}
	if a.shape[1] != b.shape[0] {
		return nil, errf("MatMul32", "inner dimension mismatch %v · %v", a.shape, b.shape)
	}
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	out := New32(m, n)
	if usePacked(m, k, n) {
		bp := getScratch32(k * n)
		packB32(b, bp)
		parallelRowsAligned(m, gemmMR, func(lo, hi int) {
			gemmPacked32(a.Data, k, n, bp, out.Data, lo, hi)
		})
		putScratch32(bp)
		return out, nil
	}
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out, nil
}

// packB32 is packB for float32 operands: gemmNR-wide column strips,
// p-major.
func packB32(b *Tensor32, bp []float32) {
	k, n := b.shape[0], b.shape[1]
	for js := 0; js < n; js += gemmNR {
		w := n - js
		if w > gemmNR {
			w = gemmNR
		}
		dst := bp[js*k : js*k+k*w]
		for p := 0; p < k; p++ {
			copy(dst[p*w:p*w+w], b.Data[p*n+js:p*n+js+w])
		}
	}
}

// gemmPacked32 is gemmPacked for float32: same blocking, scalar 4x4
// micro-kernel (float32 fits the register budget comfortably).
func gemmPacked32(aData []float32, k, n int, bp, out []float32, lo, hi int) {
	for jc := 0; jc < n; jc += gemmNC {
		nc := n - jc
		if nc > gemmNC {
			nc = gemmNC
		}
		for ic := lo; ic < hi; ic += gemmMC {
			mc := hi - ic
			if mc > gemmMC {
				mc = gemmMC
			}
			for js := jc; js < jc+nc; js += gemmNR {
				w := n - js
				if w > gemmNR {
					w = gemmNR
				}
				strip := bp[js*k : js*k+k*w]
				i := ic
				if w == gemmNR {
					for ; i+gemmMR <= ic+mc; i += gemmMR {
						micro4x4f32(aData[i*k:(i+gemmMR)*k], k, strip, out[i*n+js:], n)
					}
				}
				for i < ic+mc {
					r := ic + mc - i
					if r > gemmMR {
						r = gemmMR
					}
					microEdge32(aData[i*k:(i+r)*k], k, r, strip, w, out[i*n+js:], n)
					i += r
				}
			}
		}
	}
}

func micro4x4f32(a []float32, k int, strip, out []float32, n int) {
	a0, a1, a2, a3 := a[:k], a[k:2*k], a[2*k:3*k], a[3*k:4*k]
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	var c20, c21, c22, c23 float32
	var c30, c31, c32, c33 float32
	sp := strip
	for p := 0; p < k; p++ {
		b0, b1, b2, b3 := sp[0], sp[1], sp[2], sp[3]
		sp = sp[4:]
		v0, v1, v2, v3 := a0[p], a1[p], a2[p], a3[p]
		c00 += v0 * b0
		c01 += v0 * b1
		c02 += v0 * b2
		c03 += v0 * b3
		c10 += v1 * b0
		c11 += v1 * b1
		c12 += v1 * b2
		c13 += v1 * b3
		c20 += v2 * b0
		c21 += v2 * b1
		c22 += v2 * b2
		c23 += v2 * b3
		c30 += v3 * b0
		c31 += v3 * b1
		c32 += v3 * b2
		c33 += v3 * b3
	}
	o := out[:4]
	o[0], o[1], o[2], o[3] = c00, c01, c02, c03
	o = out[n : n+4]
	o[0], o[1], o[2], o[3] = c10, c11, c12, c13
	o = out[2*n : 2*n+4]
	o[0], o[1], o[2], o[3] = c20, c21, c22, c23
	o = out[3*n : 3*n+4]
	o[0], o[1], o[2], o[3] = c30, c31, c32, c33
}

func microEdge32(a []float32, k, r int, strip []float32, w int, out []float32, n int) {
	var acc [gemmMR * gemmNR]float32
	for p := 0; p < k; p++ {
		bq := strip[p*w : p*w+w]
		for ir := 0; ir < r; ir++ {
			v := a[ir*k+p]
			ac := acc[ir*gemmNR : ir*gemmNR+w]
			for jr, bv := range bq {
				ac[jr] += v * bv
			}
		}
	}
	for ir := 0; ir < r; ir++ {
		copy(out[ir*n:ir*n+w], acc[ir*gemmNR:ir*gemmNR+w])
	}
}

// AddRowVector32InPlace adds a 1×n row vector to every row of an m×n
// tensor in place (the inference bias add).
func AddRowVector32InPlace(t, v *Tensor32) {
	if t.Rank() != 2 || v.Rank() != 2 || v.shape[0] != 1 || v.shape[1] != t.shape[1] {
		panic(errf("AddRowVector32", "shapes %v, %v", t.shape, v.shape))
	}
	m, n := t.shape[0], t.shape[1]
	for i := 0; i < m; i++ {
		row := t.Data[i*n : (i+1)*n]
		for j := range row {
			row[j] += v.Data[j]
		}
	}
}

// ReLU32InPlace clamps negative elements to zero in place.
func ReLU32InPlace(t *Tensor32) {
	for i, v := range t.Data {
		if v < 0 {
			t.Data[i] = 0
		}
	}
}

// Equal32 reports whether t and u have the same shape and all elements
// within tol of each other.
func Equal32(t, u *Tensor32, tol float32) bool {
	if len(t.shape) != len(u.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != u.shape[i] {
			return false
		}
	}
	for i := range t.Data {
		d := t.Data[i] - u.Data[i]
		if d < 0 {
			d = -d
		}
		if d > tol {
			return false
		}
	}
	return true
}
